// Package clustertest is a reusable harness for integration tests of
// the two-tier projfreq cluster: it builds the real projfreqd and
// projfreq-router binaries once per test process, spawns them as
// subprocesses with scratch data directories, and exposes the
// membership to the test so it can kill, restart, and interrogate
// individual nodes.
//
// Node logs go to one file per process lifetime. By default they land
// in the test's temp directory; set CLUSTERTEST_LOGDIR to a path to
// keep them after the run (CI uploads that directory as an artifact
// when the cluster tests fail).
package clustertest

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// binDir holds the built binaries for this test process; see
// EnsureBinaries.
var (
	binOnce sync.Once
	binPath string
	binErr  error
)

// EnsureBinaries builds projfreqd and projfreq-router (once per test
// process) and returns the directory holding them. Building the real
// binaries — rather than re-exec'ing the test binary — keeps the
// harness in a normal test package and exercises exactly the
// artifacts an operator deploys.
func EnsureBinaries(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		dir, err := os.MkdirTemp("", "clustertest-bin-")
		if err != nil {
			binErr = err
			return
		}
		cmd := exec.Command("go", "build", "-o", dir,
			"repro/cmd/projfreqd", "repro/cmd/projfreq-router")
		out, err := cmd.CombinedOutput()
		if err != nil {
			binErr = fmt.Errorf("building cluster binaries: %v\n%s", err, out)
			return
		}
		binPath = dir
	})
	if binErr != nil {
		t.Fatal(binErr)
	}
	return binPath
}

// CleanupBinaries removes the built binaries; call it from TestMain
// after m.Run.
func CleanupBinaries() {
	if binPath != "" {
		os.RemoveAll(binPath)
	}
}

// FreeAddr reserves an ephemeral localhost port and returns it as
// host:port. The listener is closed before returning, so the port can
// (rarely) be stolen before the daemon binds it; tests that hit the
// race fail loudly in WaitReady rather than hanging.
func FreeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// LogDir resolves where node logs go: CLUSTERTEST_LOGDIR if set
// (kept after the run — what CI uploads on failure), the test's temp
// directory otherwise.
func LogDir(t *testing.T) string {
	t.Helper()
	if dir := os.Getenv("CLUSTERTEST_LOGDIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

// Node is one spawned cluster process (daemon or router).
type Node struct {
	Name string
	Addr string // host:port the process listens on
	Args []string
	Bin  string // binary path

	logDir string
	starts int
	cmd    *exec.Cmd
	waitC  chan error
}

// URL returns the node's base URL.
func (n *Node) URL() string { return "http://" + n.Addr }

// NewNode prepares (but does not start) a process. args must not
// include -addr; the harness owns the address so restarts reuse it.
func NewNode(t *testing.T, name, bin string, args ...string) *Node {
	t.Helper()
	return &Node{
		Name:   name,
		Addr:   FreeAddr(t),
		Args:   args,
		Bin:    bin,
		logDir: LogDir(t),
	}
}

// Start launches the process and waits until its HTTP face answers.
// Each start (including restarts) gets its own log file, suffixed
// with the start ordinal, so a kill-and-restart test leaves both
// lifetimes' logs for inspection.
func (n *Node) Start(t *testing.T) {
	t.Helper()
	if n.cmd != nil {
		t.Fatalf("node %s already running", n.Name)
	}
	n.starts++
	logPath := filepath.Join(n.logDir, fmt.Sprintf("%s.run%d.log", n.Name, n.starts))
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(n.Bin, append([]string{"-addr", n.Addr}, n.Args...)...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		t.Fatalf("starting %s: %v", n.Name, err)
	}
	waitC := make(chan error, 1)
	go func() {
		waitC <- cmd.Wait()
		logFile.Close()
	}()
	n.cmd = cmd
	n.waitC = waitC
	t.Cleanup(func() { n.Stop() })
	n.WaitReady(t)
}

// WaitReady polls the node's /v1/stats until it answers 200.
func (n *Node) WaitReady(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(n.URL() + "/v1/stats")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		select {
		case err := <-n.waitC:
			n.waitC <- err
			t.Fatalf("node %s exited while starting: %v (log: %s)", n.Name, err, n.logDir)
		case <-time.After(20 * time.Millisecond):
		}
	}
	t.Fatalf("node %s not ready on %s after 15s (log: %s)", n.Name, n.Addr, n.logDir)
}

// Kill sends SIGKILL — the crash case — and reaps the process.
func (n *Node) Kill(t *testing.T) {
	t.Helper()
	if n.cmd == nil {
		t.Fatalf("node %s not running", n.Name)
	}
	if err := n.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("killing %s: %v", n.Name, err)
	}
	<-n.waitC
	n.cmd = nil
	n.waitC = nil
}

// Stop terminates the process if it is still running (cleanup path;
// errors ignored).
func (n *Node) Stop() {
	if n.cmd == nil {
		return
	}
	_ = n.cmd.Process.Signal(syscall.SIGKILL)
	<-n.waitC
	n.cmd = nil
	n.waitC = nil
}

// Restart starts the node again on the same address with the same
// arguments — the recovery case.
func (n *Node) Restart(t *testing.T) {
	t.Helper()
	if n.cmd != nil {
		t.Fatalf("node %s still running", n.Name)
	}
	n.Start(t)
}

// Cluster is a running two-tier topology.
type Cluster struct {
	Ingest     []*Node
	Aggregator *Node
	Router     *Node
}

// Config sizes a cluster. Dim/Alphabet/Seed configure every daemon
// identically (summaries must be merge-compatible across the tiers).
type Config struct {
	IngestNodes  int
	Dim          int
	Alphabet     int
	Seed         uint64
	Summary      string        // daemon -summary; default "exact"
	PullInterval time.Duration // aggregator cadence; default 100ms
}

// StartCluster builds the binaries and brings up ingest nodes (each
// durable, fsync=always, in its own scratch dir), one aggregator
// pulling from all of them, and a router fronting both tiers.
func StartCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	bin := EnsureBinaries(t)
	if cfg.Summary == "" {
		cfg.Summary = "exact"
	}
	if cfg.PullInterval == 0 {
		cfg.PullInterval = 100 * time.Millisecond
	}
	daemon := filepath.Join(bin, "projfreqd")
	routerBin := filepath.Join(bin, "projfreq-router")
	shape := []string{
		"-summary", cfg.Summary,
		"-d", fmt.Sprint(cfg.Dim),
		"-q", fmt.Sprint(cfg.Alphabet),
		"-seed", fmt.Sprint(cfg.Seed),
		"-shards", "2",
	}

	c := &Cluster{}
	var ingestURLs []string
	for i := 0; i < cfg.IngestNodes; i++ {
		args := append(append([]string{}, shape...),
			"-data-dir", t.TempDir(),
			"-fsync", "always",
		)
		n := NewNode(t, fmt.Sprintf("ingest%d", i), daemon, args...)
		c.Ingest = append(c.Ingest, n)
		ingestURLs = append(ingestURLs, n.URL())
	}
	aggArgs := append(append([]string{}, shape...),
		"-pull-from", strings.Join(ingestURLs, ","),
		"-pull-interval", cfg.PullInterval.String(),
	)
	c.Aggregator = NewNode(t, "aggregator", daemon, aggArgs...)
	c.Router = NewNode(t, "router", routerBin,
		"-ingest", strings.Join(ingestURLs, ","),
		"-aggregators", c.Aggregator.URL(),
	)

	for _, n := range c.Ingest {
		n.Start(t)
	}
	c.Aggregator.Start(t)
	c.Router.Start(t)
	return c
}

// IngestURLs returns the ingest tier's base URLs (the ring's node
// set).
func (c *Cluster) IngestURLs() []string {
	out := make([]string, len(c.Ingest))
	for i, n := range c.Ingest {
		out[i] = n.URL()
	}
	return out
}

// ---- wire types the harness reads back (subset of the daemons') ----

// SourceStats mirrors the aggregator's per-source anti-entropy
// counters.
type SourceStats struct {
	URL         string `json:"url"`
	ETag        string `json:"etag"`
	Pulls       int64  `json:"pulls"`
	Changed     int64  `json:"changed"`
	NotModified int64  `json:"not_modified"`
	Errors      int64  `json:"errors"`
	Rows        int64  `json:"rows"`
}

// Stats is the slice of a daemon's /v1/stats the cluster tests read.
type Stats struct {
	Rows  int64 `json:"rows"`
	Epoch struct {
		Seq        uint64 `json:"seq"`
		Rows       int64  `json:"rows"`
		MergedRows int64  `json:"merged_rows"`
	} `json:"epoch"`
	Cluster struct {
		Role    string        `json:"role"`
		Sources []SourceStats `json:"sources"`
	} `json:"cluster"`
}

// GetStats fetches and decodes a daemon's /v1/stats.
func GetStats(t *testing.T, url string) Stats {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// WaitConverged polls the aggregator until its serving epoch's
// merged_rows reaches want: every acked row is inside an absorbed
// source summary. Fails with both sides' counts on timeout.
func WaitConverged(t *testing.T, aggURL string, want int64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last Stats
	for time.Now().Before(deadline) {
		last = GetStats(t, aggURL)
		if last.Epoch.MergedRows == want {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("aggregator serves %d merged rows after %v, want %d (sources: %+v)",
		last.Epoch.MergedRows, timeout, want, last.Cluster.Sources)
}

// PostJSON posts a JSON body and returns status + response bytes.
func PostJSON(t *testing.T, url string, body interface{}) (int, []byte) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}
