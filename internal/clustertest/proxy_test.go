package clustertest

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// startBackend runs a plain HTTP echo endpoint and returns a proxy in
// front of it plus a client with a short timeout.
func startBackend(t *testing.T) (*Proxy, *http.Client) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Write([]byte("echo:" + string(body)))
	}))
	t.Cleanup(ts.Close)
	p := NewProxy(t, strings.TrimPrefix(ts.URL, "http://"))
	// Connections must not be reused across SetFault flips: the proxy
	// severs pooled conns, and a fresh dial is what picks up the new
	// fault. Disabling keep-alives keeps each request one connection.
	client := &http.Client{
		Timeout:   2 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	return p, client
}

func get(t *testing.T, client *http.Client, url string) (string, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// TestProxyFaultKinds walks the proxy through its whole fault
// repertoire on one edge: pass, drop, blackhole, heal, delay.
func TestProxyFaultKinds(t *testing.T) {
	p, client := startBackend(t)

	if body, err := get(t, client, p.URL()); err != nil || body != "echo:" {
		t.Fatalf("pass-through: %q, %v", body, err)
	}

	// Drop: fast connection-level refusal.
	p.SetFault(Fault{Kind: Drop})
	start := time.Now()
	if _, err := get(t, client, p.URL()); err == nil {
		t.Fatal("request succeeded through a dropping proxy")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("drop took %v, want a fast reset (not a timeout)", d)
	}

	// Blackhole: the request hangs until the client's own deadline.
	p.SetFault(Fault{Kind: Blackhole})
	hole := &http.Client{Timeout: 300 * time.Millisecond,
		Transport: &http.Transport{DisableKeepAlives: true}}
	start = time.Now()
	if _, err := get(t, hole, p.URL()); err == nil {
		t.Fatal("request succeeded through a blackhole")
	}
	if d := time.Since(start); d < 250*time.Millisecond {
		t.Fatalf("blackholed request failed after %v, want it to hang to the client timeout", d)
	}

	// Heal: the edge recovers completely.
	p.Heal()
	if body, err := get(t, client, p.URL()); err != nil || body != "echo:" {
		t.Fatalf("after heal: %q, %v", body, err)
	}

	// Delay: still correct, just slow.
	p.SetFault(Fault{Kind: Delay, Delay: 120 * time.Millisecond})
	start = time.Now()
	body, err := get(t, client, p.URL())
	if err != nil || body != "echo:" {
		t.Fatalf("through delay: %q, %v", body, err)
	}
	if d := time.Since(start); d < 120*time.Millisecond {
		t.Fatalf("delayed round trip took %v, want >= one injected delay", d)
	}
}

// TestProxySetFaultSeversLiveConnections pins the semantics chaos
// schedules depend on: flipping a fault kills connections opened
// before the flip, so no pre-partition connection keeps working
// through a partition.
func TestProxySetFaultSeversLiveConnections(t *testing.T) {
	p, _ := startBackend(t)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Prove the connection is live end-to-end first.
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("pre-fault read: %v", err)
	}

	p.SetFault(Fault{Kind: Blackhole})
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatalf("severed connection should read to EOF, got %v", err)
	}
}

// TestProxySeverCutsMidStream checks the deliberately unsafe fault: a
// response is cut after SeverAfter bytes, so the client sees a
// truncated body, not a clean EOF at a message boundary. Direction
// scoping keeps the request side intact.
func TestProxySeverCutsMidStream(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "4096")
		w.Write(make([]byte, 4096))
	}))
	t.Cleanup(ts.Close)
	p := NewProxy(t, strings.TrimPrefix(ts.URL, "http://"))
	p.SetFault(Fault{Kind: Sever, Dir: ToClient, SeverAfter: 256})

	client := &http.Client{Timeout: 2 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := client.Get(p.URL())
	if err != nil {
		// The cut may land inside the response headers; that surfaces
		// as a transport error, which is an acceptable sever too.
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil && len(body) == 4096 {
		t.Fatalf("full %d-byte body arrived through a severing proxy", len(body))
	}
	if len(body) > 256 {
		t.Fatalf("%d bytes crossed a proxy severing at 256", len(body))
	}
}
