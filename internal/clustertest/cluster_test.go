package clustertest

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/words"
	"repro/internal/workload"
)

func TestMain(m *testing.M) {
	code := m.Run()
	CleanupBinaries()
	os.Exit(code)
}

// Wire shapes of the router's /v1/observe fan-out report.
type routerNodeResult struct {
	Node     string `json:"node"`
	Rows     int    `json:"rows"`
	Accepted int    `json:"accepted"`
	Error    string `json:"error"`
}

type routerObserveResponse struct {
	Rows     int                `json:"rows"`
	Accepted int                `json:"accepted"`
	Routed   int                `json:"routed"`
	Queued   int                `json:"queued"`
	Shed     int                `json:"shed"`
	Partial  bool               `json:"partial"`
	Results  []routerNodeResult `json:"results"`
}

// workloadRows materializes n deterministic rows (Zipf-distributed
// patterns, fixed seed) as plain slices.
func workloadRows(t *testing.T, d, q, n int, seed uint64) [][]uint16 {
	t.Helper()
	src := workload.ZipfPatterns(d, q, n, 40, 1.2, seed)
	rows := make([][]uint16, 0, n)
	for {
		w, ok := src.Next()
		if !ok {
			break
		}
		rows = append(rows, append([]uint16(nil), w...))
	}
	if len(rows) != n {
		t.Fatalf("workload yielded %d rows, want %d", len(rows), n)
	}
	return rows
}

// sendBatch streams one batch through the router and returns the
// fan-out report.
func sendBatch(t *testing.T, routerURL string, rows [][]uint16) (int, routerObserveResponse) {
	t.Helper()
	status, body := PostJSON(t, routerURL+"/v1/observe", map[string][][]uint16{"rows": rows})
	var resp routerObserveResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding observe response %s: %v", body, err)
	}
	return status, resp
}

// ackRows returns the subset of batch rows that were durably acked:
// the rows owned (per the deterministic ring) by nodes whose forward
// succeeded. Ingest nodes run fsync=always, so a node ack means the
// rows survive SIGKILL.
func ackRows(t *testing.T, ring *cluster.Ring, batch [][]uint16, results []routerNodeResult) [][]uint16 {
	t.Helper()
	ok := make(map[string]bool, len(results))
	for _, res := range results {
		if res.Error == "" {
			ok[res.Node] = true
		}
	}
	var acked [][]uint16
	for _, row := range batch {
		if ok[ring.OwnerOfRow(row)] {
			acked = append(acked, row)
		}
	}
	return acked
}

// sourceByURL indexes the aggregator's anti-entropy counters.
func sourceByURL(t *testing.T, st Stats, url string) SourceStats {
	t.Helper()
	for _, src := range st.Cluster.Sources {
		if src.URL == url {
			return src
		}
	}
	t.Fatalf("no source %s in %+v", url, st.Cluster.Sources)
	return SourceStats{}
}

// TestClusterKillAndRecover is the tentpole integration property: a
// two-ingest + one-aggregator cluster, fronted by the router, has one
// ingest node SIGKILLed mid-stream and restarted (same address, same
// data dir). The aggregator must converge to bit-exactly the answers
// of a single process that ingested every acked row — and its
// anti-entropy must ship blobs only for shards whose state actually
// changed (asserted from the per-source request counters).
func TestClusterKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	const (
		d, q      = 4, 3
		seed      = 7
		batchSize = 100
		batches   = 30
	)
	// -retry-queue-rows=0 pins the router's legacy fail-fast contract:
	// rows owned by a dead node are reported failed (partial 502), not
	// queued — which is what lets this test compute the acked subset
	// per batch. The chaos test covers the queued mode.
	c := StartCluster(t, Config{IngestNodes: 2, Dim: d, Alphabet: q, Seed: seed,
		RouterArgs: []string{"-retry-queue-rows", "0"}})
	ring, err := cluster.NewRing(c.IngestURLs())
	if err != nil {
		t.Fatal(err)
	}

	// The single-process baseline: same summary configuration, fed
	// exactly the acked rows. Exact summaries make every merge order
	// equivalent, so "cluster == baseline" is an equality check, not a
	// tolerance check.
	baseline, err := engine.NewSharded(func(int) (core.Summary, error) {
		return core.NewExact(d, q)
	}, engine.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer baseline.Close()

	rows := workloadRows(t, d, q, batchSize*batches, 99)
	feedBaseline := func(acked [][]uint16) {
		b := words.NewBatch(d, len(acked))
		for _, row := range acked {
			copy(b.AppendRow(), row)
		}
		baseline.ObserveBatch(b)
	}

	var ackedTotal int64
	partials := 0
	for i := 0; i < batches; i++ {
		batch := rows[i*batchSize : (i+1)*batchSize]
		status, resp := sendBatch(t, c.Router.URL(), batch)
		acked := ackRows(t, ring, batch, resp.Results)
		switch {
		case status == 200:
			if len(acked) != len(batch) || resp.Accepted != len(batch) {
				t.Fatalf("batch %d: 200 but %d/%d acked (%+v)", i, resp.Accepted, len(batch), resp)
			}
		case status == 502 && resp.Partial:
			partials++
			if resp.Accepted != len(acked) {
				t.Fatalf("batch %d: ack count %d != rows owned by live nodes %d", i, resp.Accepted, len(acked))
			}
		default:
			t.Fatalf("batch %d: status %d, %+v", i, status, resp)
		}
		feedBaseline(acked)
		ackedTotal += int64(len(acked))

		if i == 9 {
			// Crash one ingest node mid-stream: no drain, no shutdown
			// checkpoint — recovery must come from the WAL. Hold the
			// stream until the aggregator has probed the dead node at
			// least once, so the outage is observable in the pull
			// counters rather than racing the restart.
			c.Ingest[0].Kill(t)
			deadline := time.Now().Add(10 * time.Second)
			for sourceByURL(t, GetStats(t, c.Aggregator.URL()), c.Ingest[0].URL()).Errors == 0 {
				if time.Now().After(deadline) {
					t.Fatal("aggregator never recorded a failed pull against the killed node")
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
		if i == 19 {
			c.Ingest[0].Restart(t)
		}
	}
	if partials == 0 {
		t.Fatal("no partial batches during the outage — the kill proved nothing")
	}
	if ackedTotal == int64(batchSize*batches) {
		t.Fatal("every row acked despite the outage — the kill proved nothing")
	}

	// Convergence: the aggregator's serving epoch accounts for every
	// acked row (dead node's WAL recovery included) and nothing else.
	WaitConverged(t, c.Aggregator.URL(), ackedTotal, 30*time.Second)
	aggStats := GetStats(t, c.Aggregator.URL())
	if aggStats.Cluster.Role != "aggregator" || aggStats.Rows != 0 {
		t.Fatalf("aggregator stats: %+v", aggStats)
	}
	restarted := sourceByURL(t, aggStats, c.Ingest[0].URL())
	if restarted.Errors == 0 {
		t.Fatalf("no pull errors recorded against the killed node: %+v", restarted)
	}

	// Bit-exactness: integer-valued projected queries through the
	// router (which proxies to the aggregator) equal the baseline's
	// answers exactly.
	full := words.FullColumnSet(d)
	queries := []map[string]interface{}{
		{"kind": "f0", "cols": []int{0}},
		{"kind": "f0", "cols": []int{1, 2}},
		{"kind": "f0", "cols": []int{0, 1, 2, 3}},
		{"kind": "fp", "cols": []int{0, 1}, "p": 2.0},
		{"kind": "freq", "cols": []int{0, 1, 2, 3}, "pattern": rows[0]},
		{"kind": "freq", "cols": []int{0, 1, 2, 3}, "pattern": rows[57]},
	}
	colSet := func(cols []int) words.ColumnSet { return words.MustColumnSet(d, cols...) }
	want := []float64{}
	for _, sp := range queries {
		cols := colSet(sp["cols"].([]int))
		var v float64
		var err error
		switch sp["kind"] {
		case "f0":
			v, err = baseline.F0(cols)
		case "fp":
			v, err = baseline.Fp(cols, 2)
		case "freq":
			v, err = baseline.Frequency(full, words.Word(sp["pattern"].([]uint16)))
		}
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, v)
	}
	status, body := PostJSON(t, c.Router.URL()+"/v1/query", map[string]interface{}{"queries": queries})
	if status != 200 {
		t.Fatalf("query through router: %d %s", status, body)
	}
	var qr struct {
		Results []struct {
			Value float64 `json:"value"`
			Error string  `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(qr.Results), len(queries))
	}
	for i, res := range qr.Results {
		if res.Error != "" {
			t.Fatalf("query %d: %s", i, res.Error)
		}
		if res.Value != want[i] {
			t.Fatalf("query %d (%v): cluster %v, baseline %v", i, queries[i], res.Value, want[i])
		}
	}

	// Anti-entropy scope: ingest into node 1 only, and assert the next
	// rounds ship node 1's changed blob while node 0 — untouched since
	// its last pull — costs only 304 probes, no transfers.
	before := GetStats(t, c.Aggregator.URL())
	var node1Rows [][]uint16
	for _, row := range workloadRows(t, d, q, 400, 1234) {
		if ring.OwnerOfRow(row) == c.Ingest[1].URL() {
			node1Rows = append(node1Rows, row)
		}
	}
	if len(node1Rows) == 0 {
		t.Fatal("workload owns no rows on node 1")
	}
	status, resp := sendBatch(t, c.Router.URL(), node1Rows)
	if status != 200 || resp.Accepted != len(node1Rows) {
		t.Fatalf("targeted batch: %d %+v", status, resp)
	}
	feedBaseline(node1Rows)
	ackedTotal += int64(len(node1Rows))
	WaitConverged(t, c.Aggregator.URL(), ackedTotal, 30*time.Second)
	// Wait (by polling, not a fixed sleep) until the idle node has
	// provably been probed again — its 304 counter advanced — then
	// check no blob shipped for it while node 1's did.
	idleBefore := sourceByURL(t, before, c.Ingest[0].URL())
	var after Stats
	Poll(t, 10*time.Second, "an idle-node 304 probe", func() bool {
		after = GetStats(t, c.Aggregator.URL())
		return sourceByURL(t, after, c.Ingest[0].URL()).NotModified > idleBefore.NotModified
	})
	idleAfter := sourceByURL(t, after, c.Ingest[0].URL())
	busyBefore, busyAfter := sourceByURL(t, before, c.Ingest[1].URL()), sourceByURL(t, after, c.Ingest[1].URL())
	if idleAfter.Changed != idleBefore.Changed {
		t.Fatalf("idle node shipped %d blobs while only node 1 changed",
			idleAfter.Changed-idleBefore.Changed)
	}
	if busyAfter.Changed <= busyBefore.Changed {
		t.Fatalf("changed node shipped no blob: %+v -> %+v", busyBefore, busyAfter)
	}

	// The spot checks above are targeted; finish with the full-table
	// equality — every pattern's exact count, cluster vs baseline.
	statusF, bodyF := PostJSON(t, c.Router.URL()+"/v1/query", map[string]interface{}{
		"queries": []map[string]interface{}{{"kind": "f0", "cols": []int{0, 1, 2, 3}}},
	})
	if statusF != 200 {
		t.Fatalf("final f0: %d %s", statusF, bodyF)
	}
	var fr struct {
		Results []struct {
			Value float64 `json:"value"`
		} `json:"results"`
	}
	if err := json.Unmarshal(bodyF, &fr); err != nil {
		t.Fatal(err)
	}
	wantF0, err := baseline.F0(full)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Results[0].Value != wantF0 {
		t.Fatalf("final distinct-row count: cluster %v, baseline %v", fr.Results[0].Value, wantF0)
	}
}
