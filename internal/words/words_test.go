package words

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestWordCloneIsIndependent(t *testing.T) {
	w := Word{1, 2, 3}
	c := w.Clone()
	c[0] = 9
	if w[0] != 1 {
		t.Fatalf("clone aliases original: %v", w)
	}
	if !w.Equal(Word{1, 2, 3}) {
		t.Fatalf("original mutated: %v", w)
	}
}

func TestWordEqual(t *testing.T) {
	cases := []struct {
		a, b Word
		want bool
	}{
		{Word{}, Word{}, true},
		{Word{1}, Word{1}, true},
		{Word{1}, Word{2}, false},
		{Word{1}, Word{1, 0}, false},
		{Word{0, 1}, Word{0, 1}, true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSupportAndWeight(t *testing.T) {
	w := Word{0, 3, 0, 1, 2}
	if got := w.Support(); !reflect.DeepEqual(got, []int{1, 3, 4}) {
		t.Fatalf("Support = %v", got)
	}
	if w.Weight() != 3 {
		t.Fatalf("Weight = %d", w.Weight())
	}
	if (Word{0, 0}).Support() != nil {
		t.Fatalf("zero word must have empty support")
	}
}

func TestSupportMaskMatchesSupport(t *testing.T) {
	f := func(bits []bool) bool {
		if len(bits) > 64 {
			bits = bits[:64]
		}
		w := make(Word, len(bits))
		var want uint64
		for i, b := range bits {
			if b {
				w[i] = uint16(1 + i%3)
				want |= 1 << uint(i)
			}
		}
		return w.SupportMask() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSupportMaskPanicsOver64(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for d > 64")
		}
	}()
	make(Word, 65).SupportMask()
}

func TestFromMaskRoundTrip(t *testing.T) {
	f := func(mask uint64, dRaw uint8) bool {
		d := 1 + int(dRaw%64)
		if d < 64 {
			mask &= (1 << uint(d)) - 1
		}
		w := FromMask(mask, d)
		return w.SupportMask() == mask && w.IsBinary()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromMaskPanicsOnStrayBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range mask")
		}
	}()
	FromMask(1<<10, 5)
}

// TestProjectPaperExample reproduces the worked example of Section 2:
// the 5×3 binary array projected onto C = {0, 1} yields frequency
// vector (1, 1, 0, 3).
func TestProjectPaperExample(t *testing.T) {
	rows := []Word{
		{1, 1, 0},
		{0, 1, 0},
		{0, 0, 1},
		{1, 1, 1},
		{1, 1, 0},
	}
	c := MustColumnSet(3, 0, 1)
	counts := map[uint64]int{}
	for _, r := range rows {
		p := r.Project(c)
		idx, err := Index(p, 2)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	want := map[uint64]int{3: 3, 1: 1, 0: 1}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("frequency vector = %v, want %v", counts, want)
	}
	// F0 = 3 distinct rows, F1 = 5 rows, as the paper computes.
	if len(counts) != 3 {
		t.Fatalf("F0 = %d, want 3", len(counts))
	}
}

func TestProjectIntoMatchesProject(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		d := 1 + r.Intn(20)
		w := make(Word, d)
		for i := range w {
			w[i] = uint16(r.Intn(5))
		}
		var cols []int
		for j := 0; j < d; j++ {
			if r.Intn(2) == 0 {
				cols = append(cols, j)
			}
		}
		c := MustColumnSet(d, cols...)
		want := w.Project(c)
		got := make(Word, c.Len())
		w.ProjectInto(c, got)
		if !got.Equal(want) {
			t.Fatalf("ProjectInto = %v, Project = %v", got, want)
		}
	}
}

func TestAppendKeyRoundTrip(t *testing.T) {
	f := func(syms []uint16) bool {
		w := Word(syms)
		c := FullColumnSet(len(w))
		key := AppendKey(nil, w, c)
		if len(key) != 2*len(w) {
			return false
		}
		return KeyToWord(string(key)).Equal(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendKeyDistinguishesPatterns(t *testing.T) {
	c := MustColumnSet(4, 1, 3)
	a := AppendKey(nil, Word{0, 5, 0, 7}, c)
	b := AppendKey(nil, Word{9, 5, 9, 7}, c)
	if string(a) != string(b) {
		t.Fatal("keys must agree when projections agree")
	}
	e := AppendKey(nil, Word{0, 5, 0, 8}, c)
	if string(a) == string(e) {
		t.Fatal("keys must differ when projections differ")
	}
}

func TestKeyToWordPanicsOnOddLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KeyToWord("abc")
}

func TestIndexCanonicalOrder(t *testing.T) {
	// Remark 1's canonical mapping: e(00)=0, e(01)=1, e(10)=2, e(11)=3.
	got := []uint64{}
	for _, w := range []Word{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		idx, err := Index(w, 2)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, idx)
	}
	if !reflect.DeepEqual(got, []uint64{0, 1, 2, 3}) {
		t.Fatalf("canonical order = %v", got)
	}
}

func TestIndexWordAtRoundTrip(t *testing.T) {
	f := func(idxRaw uint32, qRaw, nRaw uint8) bool {
		q := 2 + int(qRaw%30)
		n := 1 + int(nRaw%6)
		max := uint64(1)
		for i := 0; i < n; i++ {
			max *= uint64(q)
		}
		idx := uint64(idxRaw) % max
		w := WordAt(idx, q, n)
		back, err := Index(w, q)
		return err == nil && back == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexErrors(t *testing.T) {
	if _, err := Index(Word{5}, 4); err == nil {
		t.Fatal("symbol outside alphabet must error")
	}
	if _, err := Index(Word{0}, 1); err == nil {
		t.Fatal("alphabet < 2 must error")
	}
	// 2^64 overflows: 65 binary symbols.
	big := make(Word, 65)
	for i := range big {
		big[i] = 1
	}
	if _, err := Index(big, 2); !errors.Is(err, ErrIndexOverflow) {
		t.Fatalf("want ErrIndexOverflow, got %v", err)
	}
}

func TestIndexUint64Boundary(t *testing.T) {
	// Q^|C| exactly 2^64: q = 2^16, |C| = 4. Every word fits — the
	// largest index is 2^64 - 1.
	maxSym := uint16(MaxAlphabet - 1)
	top := Word{maxSym, maxSym, maxSym, maxSym}
	idx, err := Index(top, MaxAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	if idx != math.MaxUint64 {
		t.Fatalf("Index(max word, 2^16) = %d, want 2^64-1", idx)
	}
	// 64 binary symbols: max index 2^64 - 1, still representable.
	ones := make(Word, 64)
	for i := range ones {
		ones[i] = 1
	}
	if idx, err := Index(ones, 2); err != nil || idx != math.MaxUint64 {
		t.Fatalf("Index(1^64, 2) = %d, %v, want 2^64-1", idx, err)
	}
	// Q^|C| just above 2^64: a fifth symbol overflows unless the
	// leading symbols keep the value in range.
	if _, err := Index(append(Word{1}, make(Word, 4)...), MaxAlphabet); !errors.Is(err, ErrIndexOverflow) {
		t.Fatalf("2^64 must overflow, got %v", err)
	}
	if idx, err := Index(append(Word{0}, top...), MaxAlphabet); err != nil || idx != math.MaxUint64 {
		t.Fatalf("leading zero keeps 2^64-1 in range: %d, %v", idx, err)
	}
	// The multiply-step overflow (hi != 0) as well as the add-step
	// overflow (hi == 0 but lo + x wraps) must both be caught. The
	// add case needs a non-power-of-two alphabet: over q = 3, the
	// prefix indexing (2^64-1)/3 followed by symbol x lands exactly
	// on 2^64-1+x.
	if _, err := Index(Word{2, 0, 0, 0, 0}, MaxAlphabet); !errors.Is(err, ErrIndexOverflow) {
		t.Fatalf("multiply overflow must be caught, got %v", err)
	}
	prefix := WordAt(math.MaxUint64/3, 3, 41)
	if idx, err := Index(append(prefix, 0), 3); err != nil || idx != math.MaxUint64 {
		t.Fatalf("Index(prefix·0, 3) = %d, %v, want 2^64-1", idx, err)
	}
	if _, err := Index(append(prefix, 1), 3); !errors.Is(err, ErrIndexOverflow) {
		t.Fatalf("add overflow must be caught, got %v", err)
	}
}

func TestValidate(t *testing.T) {
	if err := (Word{0, 1, 2}).Validate(3); err != nil {
		t.Fatal(err)
	}
	if err := (Word{0, 3}).Validate(3); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestWordString(t *testing.T) {
	if s := (Word{1, 0, 12}).String(); s != "(1 0 12)" {
		t.Fatalf("String = %q", s)
	}
	if s := (Word{}).String(); s != "()" {
		t.Fatalf("empty String = %q", s)
	}
}
