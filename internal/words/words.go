// Package words models the data items of projected frequency estimation:
// rows of an n×d array over alphabet [Q] = {0, 1, ..., Q-1}, column
// subsets C ⊆ [d], projections A^C, and the canonical index function
// e(·) of Remark 1 in the paper that maps Q-ary words to positions of
// the frequency vector f(A, C).
//
// The types divide along the paper's two axes:
//
//   - Data: Word is one row ([]uint16 symbols); Table is an in-memory
//     n×d array; RowSource streams rows one pass at a time; Batch is a
//     flat stride-d buffer of rows, the unit of amortized ingestion
//     (one allocation and one bookkeeping pass per batch instead of
//     per row) that core.BatchObserver consumes.
//   - Queries: ColumnSet is an immutable subset C ⊆ [d] with the set
//     algebra the bounds are stated in (union, intersection, symmetric
//     difference for the α-net neighbour distance) and the predicates
//     planners route on (Equal for exact matches, IsSubsetOf for
//     covering ones). Project/ProjectInto apply C to a row; AppendKey
//     builds the canonical projection key that summaries hash.
//
// Words are stored as []uint16 symbol slices, supporting alphabets up
// to Q = 65536, which covers every parameter regime used by the paper
// (the corollaries in Section 4 take Q as large as poly(d)). Nothing
// here allocates on hot paths beyond what the caller hands in: rows
// project into caller buffers, batches expose row views into their
// backing array, and ColumnSet members are read in place (At).
package words

import (
	"errors"
	"fmt"
	"math/bits"
)

// MaxAlphabet is the largest supported alphabet size Q.
const MaxAlphabet = 1 << 16

// Word is a row of the input array: a vector of symbols over [Q].
// The alphabet size Q is carried by the containing Table or stream,
// not by the word itself.
type Word []uint16

// Clone returns a copy of w that shares no storage with it.
func (w Word) Clone() Word {
	c := make(Word, len(w))
	copy(c, w)
	return c
}

// Equal reports whether w and v have the same length and symbols.
func (w Word) Equal(v Word) bool {
	if len(w) != len(v) {
		return false
	}
	for i := range w {
		if w[i] != v[i] {
			return false
		}
	}
	return true
}

// Support returns the sorted positions i with w[i] != 0, the set
// supp(w) from Definition 3.1.
func (w Word) Support() []int {
	var s []int
	for i, x := range w {
		if x != 0 {
			s = append(s, i)
		}
	}
	return s
}

// Weight returns |supp(w)|, the Hamming weight of w.
func (w Word) Weight() int {
	n := 0
	for _, x := range w {
		if x != 0 {
			n++
		}
	}
	return n
}

// SupportMask returns supp(w) as a bitmask. It panics if len(w) > 64.
func (w Word) SupportMask() uint64 {
	if len(w) > 64 {
		panic("words: SupportMask requires d <= 64")
	}
	var m uint64
	for i, x := range w {
		if x != 0 {
			m |= 1 << uint(i)
		}
	}
	return m
}

// IsBinary reports whether every symbol of w is 0 or 1.
func (w Word) IsBinary() bool {
	for _, x := range w {
		if x > 1 {
			return false
		}
	}
	return true
}

// String renders the word compactly, e.g. "(1 0 3)".
func (w Word) String() string {
	b := make([]byte, 0, 2+3*len(w))
	b = append(b, '(')
	for i, x := range w {
		if i > 0 {
			b = append(b, ' ')
		}
		b = appendUint(b, uint64(x))
	}
	b = append(b, ')')
	return string(b)
}

func appendUint(b []byte, x uint64) []byte {
	if x == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for x > 0 {
		i--
		tmp[i] = byte('0' + x%10)
		x /= 10
	}
	return append(b, tmp[i:]...)
}

// FromMask builds a binary word of length d whose support is the set
// bits of mask. It panics if d > 64 or mask has bits at or above d.
func FromMask(mask uint64, d int) Word {
	if d > 64 {
		panic("words: FromMask requires d <= 64")
	}
	if d < 64 && mask>>uint(d) != 0 {
		panic("words: mask has bits outside [d]")
	}
	w := make(Word, d)
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		w[i] = 1
		mask &= mask - 1
	}
	return w
}

// Project returns the restriction of w to the columns of c, in the
// (ascending) column order of c: the row A^C_i of the paper.
// The result is freshly allocated.
func (w Word) Project(c ColumnSet) Word {
	out := make(Word, len(c.cols))
	for i, j := range c.cols {
		out[i] = w[j]
	}
	return out
}

// ProjectInto writes the restriction of w to c into dst, which must
// have length c.Len(). It avoids allocation in hot loops.
func (w Word) ProjectInto(c ColumnSet, dst Word) {
	for i, j := range c.cols {
		dst[i] = w[j]
	}
}

// AppendKey appends a compact byte encoding of w's restriction to c
// onto buf and returns the extended slice. Two words have equal keys
// iff their projections onto c are equal, so string(key) is a valid
// map key for pattern counting.
func AppendKey(buf []byte, w Word, c ColumnSet) []byte {
	for _, j := range c.cols {
		x := w[j]
		buf = append(buf, byte(x), byte(x>>8))
	}
	return buf
}

// KeyToWord decodes a key produced by AppendKey back into the
// projected word (length = len(key)/2).
func KeyToWord(key string) Word {
	if len(key)%2 != 0 {
		panic("words: malformed pattern key")
	}
	w := make(Word, len(key)/2)
	for i := range w {
		w[i] = uint16(key[2*i]) | uint16(key[2*i+1])<<8
	}
	return w
}

// ErrIndexOverflow is returned by Index when Q^len(w) exceeds uint64.
var ErrIndexOverflow = errors.New("words: Q^|C| does not fit in uint64")

// Index implements the canonical index function e(w) of Remark 1: the
// bijection from [Q]^|C| to {0, ..., Q^|C|-1} that reads w as a
// base-Q numeral (most significant symbol first).
func Index(w Word, q int) (uint64, error) {
	if q < 2 || q > MaxAlphabet {
		return 0, fmt.Errorf("words: alphabet size %d out of range [2, %d]", q, MaxAlphabet)
	}
	var idx uint64
	for _, x := range w {
		if int(x) >= q {
			return 0, fmt.Errorf("words: symbol %d outside alphabet [%d]", x, q)
		}
		hi, lo := bits.Mul64(idx, uint64(q))
		if hi != 0 {
			return 0, ErrIndexOverflow
		}
		idx = lo + uint64(x)
		if idx < lo {
			return 0, ErrIndexOverflow
		}
	}
	return idx, nil
}

// WordAt inverts Index: it returns the word of length n over [q] whose
// canonical index is idx. It panics if idx >= q^n.
func WordAt(idx uint64, q, n int) Word {
	w := make(Word, n)
	for i := n - 1; i >= 0; i-- {
		w[i] = uint16(idx % uint64(q))
		idx /= uint64(q)
	}
	if idx != 0 {
		panic("words: index out of range for word length")
	}
	return w
}

// Validate checks that every symbol of w lies in [q].
func (w Word) Validate(q int) error {
	for i, x := range w {
		if int(x) >= q {
			return fmt.Errorf("words: symbol %d at position %d outside alphabet [%d]", x, i, q)
		}
	}
	return nil
}
