package words

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

// ColumnSet is a subset C ⊆ [d] of column indices, the projection
// query of the paper. It is immutable after construction: all methods
// treat the receiver as read-only, and constructors copy their input.
type ColumnSet struct {
	d    int
	cols []int // sorted, unique, each in [0, d)
}

// NewColumnSet builds the column set {cols...} over dimension d.
// Duplicates are merged; out-of-range indices are an error.
func NewColumnSet(d int, cols ...int) (ColumnSet, error) {
	if d < 0 {
		return ColumnSet{}, fmt.Errorf("words: negative dimension %d", d)
	}
	sorted := make([]int, len(cols))
	copy(sorted, cols)
	sort.Ints(sorted)
	out := sorted[:0]
	prev := -1
	for _, c := range sorted {
		if c < 0 || c >= d {
			return ColumnSet{}, fmt.Errorf("words: column %d outside [0, %d)", c, d)
		}
		if c != prev {
			out = append(out, c)
			prev = c
		}
	}
	return ColumnSet{d: d, cols: out}, nil
}

// MustColumnSet is NewColumnSet that panics on error; intended for
// tests and for literals known to be valid.
func MustColumnSet(d int, cols ...int) ColumnSet {
	c, err := NewColumnSet(d, cols...)
	if err != nil {
		panic(err)
	}
	return c
}

// ColumnSetFromMask builds the column set whose members are the set
// bits of mask, over dimension d <= 64.
func ColumnSetFromMask(mask uint64, d int) (ColumnSet, error) {
	if d < 0 || d > 64 {
		return ColumnSet{}, fmt.Errorf("words: mask dimension %d outside [0, 64]", d)
	}
	if d < 64 && mask>>uint(d) != 0 {
		return ColumnSet{}, fmt.Errorf("words: mask %#x has bits outside [%d]", mask, d)
	}
	cols := make([]int, 0, bits.OnesCount64(mask))
	for m := mask; m != 0; m &= m - 1 {
		cols = append(cols, bits.TrailingZeros64(m))
	}
	return ColumnSet{d: d, cols: cols}, nil
}

// FullColumnSet returns the set of all d columns.
func FullColumnSet(d int) ColumnSet {
	cols := make([]int, d)
	for i := range cols {
		cols[i] = i
	}
	return ColumnSet{d: d, cols: cols}
}

// Dim returns the ambient dimension d.
func (c ColumnSet) Dim() int { return c.d }

// Len returns |C|.
func (c ColumnSet) Len() int { return len(c.cols) }

// At returns the i-th smallest member column, 0 ≤ i < Len. Unlike
// Columns it does not allocate, which is what hot paths that walk a
// set's members (cache-key construction, planners) need.
func (c ColumnSet) At(i int) int { return c.cols[i] }

// AppendCanonicalKey appends a canonical binary key of the set —
// dimension, member count, and the sorted unique members, all varint
// — to dst and returns the extended slice. Equal sets produce equal
// keys, unequal sets cannot collide (every field is self-delimiting),
// and appending into a caller buffer keeps key construction
// allocation-free; it is the one encoding shared by the planner's
// exact-match index and the engine's query cache key.
func (c ColumnSet) AppendCanonicalKey(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(c.d))
	dst = binary.AppendUvarint(dst, uint64(len(c.cols)))
	for _, j := range c.cols {
		dst = binary.AppendUvarint(dst, uint64(j))
	}
	return dst
}

// Columns returns a copy of the sorted member columns.
func (c ColumnSet) Columns() []int {
	out := make([]int, len(c.cols))
	copy(out, c.cols)
	return out
}

// Contains reports whether column j is a member of C.
func (c ColumnSet) Contains(j int) bool {
	i := sort.SearchInts(c.cols, j)
	return i < len(c.cols) && c.cols[i] == j
}

// Mask returns C as a bitmask; it panics if d > 64.
func (c ColumnSet) Mask() uint64 {
	if c.d > 64 {
		panic("words: Mask requires d <= 64")
	}
	var m uint64
	for _, j := range c.cols {
		m |= 1 << uint(j)
	}
	return m
}

// Complement returns [d] \ C.
func (c ColumnSet) Complement() ColumnSet {
	out := make([]int, 0, c.d-len(c.cols))
	k := 0
	for j := 0; j < c.d; j++ {
		if k < len(c.cols) && c.cols[k] == j {
			k++
			continue
		}
		out = append(out, j)
	}
	return ColumnSet{d: c.d, cols: out}
}

// Union returns C ∪ o. Both sets must share the same dimension.
func (c ColumnSet) Union(o ColumnSet) ColumnSet {
	c.mustSameDim(o)
	out := make([]int, 0, len(c.cols)+len(o.cols))
	i, j := 0, 0
	for i < len(c.cols) && j < len(o.cols) {
		switch {
		case c.cols[i] < o.cols[j]:
			out = append(out, c.cols[i])
			i++
		case c.cols[i] > o.cols[j]:
			out = append(out, o.cols[j])
			j++
		default:
			out = append(out, c.cols[i])
			i++
			j++
		}
	}
	out = append(out, c.cols[i:]...)
	out = append(out, o.cols[j:]...)
	return ColumnSet{d: c.d, cols: out}
}

// Intersect returns C ∩ o.
func (c ColumnSet) Intersect(o ColumnSet) ColumnSet {
	c.mustSameDim(o)
	var out []int
	i, j := 0, 0
	for i < len(c.cols) && j < len(o.cols) {
		switch {
		case c.cols[i] < o.cols[j]:
			i++
		case c.cols[i] > o.cols[j]:
			j++
		default:
			out = append(out, c.cols[i])
			i++
			j++
		}
	}
	return ColumnSet{d: c.d, cols: out}
}

// Diff returns C \ o.
func (c ColumnSet) Diff(o ColumnSet) ColumnSet {
	c.mustSameDim(o)
	var out []int
	j := 0
	for _, x := range c.cols {
		for j < len(o.cols) && o.cols[j] < x {
			j++
		}
		if j < len(o.cols) && o.cols[j] == x {
			continue
		}
		out = append(out, x)
	}
	return ColumnSet{d: c.d, cols: out}
}

// SymDiffSize returns |C Δ o|, the measure the α-net neighbour bound
// of Section 6 is stated in.
func (c ColumnSet) SymDiffSize(o ColumnSet) int {
	inter := c.Intersect(o).Len()
	return c.Len() + o.Len() - 2*inter
}

// Equal reports whether the two sets have identical dimension and
// members.
func (c ColumnSet) Equal(o ColumnSet) bool {
	if c.d != o.d || len(c.cols) != len(o.cols) {
		return false
	}
	for i := range c.cols {
		if c.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// IsSubsetOf reports whether C ⊆ o. It walks both sorted member
// lists in place — no intersection materializes — so planners can
// probe coverage on the query hot path without allocating.
func (c ColumnSet) IsSubsetOf(o ColumnSet) bool {
	c.mustSameDim(o)
	j := 0
	for _, x := range c.cols {
		for j < len(o.cols) && o.cols[j] < x {
			j++
		}
		if j >= len(o.cols) || o.cols[j] != x {
			return false
		}
		j++
	}
	return true
}

func (c ColumnSet) mustSameDim(o ColumnSet) {
	if c.d != o.d {
		panic(fmt.Sprintf("words: dimension mismatch %d vs %d", c.d, o.d))
	}
}

// String renders the set like "{0,2,5}/8" where 8 is the dimension.
func (c ColumnSet) String() string {
	b := make([]byte, 0, 2+3*len(c.cols))
	b = append(b, '{')
	for i, j := range c.cols {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendUint(b, uint64(j))
	}
	b = append(b, '}', '/')
	b = appendUint(b, uint64(c.d))
	return string(b)
}
