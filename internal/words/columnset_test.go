package words

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestNewColumnSetValidation(t *testing.T) {
	if _, err := NewColumnSet(4, 0, 4); err == nil {
		t.Fatal("out-of-range column must error")
	}
	if _, err := NewColumnSet(4, -1); err == nil {
		t.Fatal("negative column must error")
	}
	if _, err := NewColumnSet(-1); err == nil {
		t.Fatal("negative dimension must error")
	}
	c, err := NewColumnSet(5, 3, 1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || !c.Contains(1) || !c.Contains(3) {
		t.Fatalf("dedup failed: %v", c)
	}
}

func TestColumnSetImmutableInput(t *testing.T) {
	in := []int{2, 0}
	c := MustColumnSet(3, in...)
	in[0] = 1
	if !c.Contains(2) {
		t.Fatal("constructor must copy its input")
	}
	cols := c.Columns()
	cols[0] = 99
	if !c.Contains(0) {
		t.Fatal("Columns must return a copy")
	}
}

// maskPair generates two random masks over a shared small dimension.
func maskPair(a, b uint64, dRaw uint8) (uint64, uint64, int) {
	d := 1 + int(dRaw%20)
	m := uint64(1)<<uint(d) - 1
	return a & m, b & m, d
}

func TestSetAlgebraAgainstMasks(t *testing.T) {
	f := func(aRaw, bRaw uint64, dRaw uint8) bool {
		am, bm, d := maskPair(aRaw, bRaw, dRaw)
		a, err := ColumnSetFromMask(am, d)
		if err != nil {
			return false
		}
		b, err := ColumnSetFromMask(bm, d)
		if err != nil {
			return false
		}
		return a.Union(b).Mask() == am|bm &&
			a.Intersect(b).Mask() == am&bm &&
			a.Diff(b).Mask() == am&^bm &&
			a.Complement().Mask() == ^am&(uint64(1)<<uint(d)-1) &&
			a.SymDiffSize(b) == bits.OnesCount64(am^bm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaskRoundTrip(t *testing.T) {
	f := func(mRaw uint64, dRaw uint8) bool {
		d := 1 + int(dRaw%64)
		m := mRaw
		if d < 64 {
			m &= uint64(1)<<uint(d) - 1
		}
		c, err := ColumnSetFromMask(m, d)
		return err == nil && c.Mask() == m && c.Len() == bits.OnesCount64(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestColumnSetFromMaskValidation(t *testing.T) {
	if _, err := ColumnSetFromMask(1<<6, 6); err == nil {
		t.Fatal("mask bits outside [d] must error")
	}
	if _, err := ColumnSetFromMask(0, 65); err == nil {
		t.Fatal("d > 64 must error")
	}
}

func TestFullColumnSet(t *testing.T) {
	c := FullColumnSet(5)
	if c.Len() != 5 || c.Dim() != 5 {
		t.Fatalf("full set: %v", c)
	}
	if c.Complement().Len() != 0 {
		t.Fatal("complement of full set must be empty")
	}
}

func TestSubsetAndEqual(t *testing.T) {
	a := MustColumnSet(6, 1, 3)
	b := MustColumnSet(6, 1, 3, 5)
	if !a.IsSubsetOf(b) || b.IsSubsetOf(a) {
		t.Fatal("subset relation wrong")
	}
	if !a.Equal(MustColumnSet(6, 3, 1)) {
		t.Fatal("order must not matter")
	}
	if a.Equal(MustColumnSet(7, 1, 3)) {
		t.Fatal("dimension must matter")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	MustColumnSet(4, 1).Union(MustColumnSet(5, 1))
}

func TestColumnSetString(t *testing.T) {
	if s := MustColumnSet(8, 0, 2, 5).String(); s != "{0,2,5}/8" {
		t.Fatalf("String = %q", s)
	}
}
