package words

import "fmt"

// AppendBatchKeys projects every row of b through c and appends the
// canonical projection keys onto dst in row order, returning the
// extended slice. The output is byte-identical to calling AppendKey
// per row: each row contributes exactly 2·c.Len() bytes (two
// little-endian bytes per projected symbol), so row i's key occupies
// dst[base+i·stride : base+(i+1)·stride] where stride = 2·c.Len() and
// base is len(dst) on entry.
//
// This is the first stage of the batched key pipeline: one pass builds
// a flat key arena for a whole batch, which hashing.AppendFingerprints64
// then fingerprints without materializing per-row slices. It panics if
// c's dimension differs from b's, matching ProjectInto's contract.
func AppendBatchKeys(dst []byte, b *Batch, c ColumnSet) []byte {
	if c.d != b.d {
		panic(fmt.Sprintf("words: column set over [%d] applied to batch of dimension %d", c.d, b.d))
	}
	n := b.Len()
	stride := 2 * len(c.cols)
	base := len(dst)
	need := base + n*stride
	if cap(dst) < need {
		grown := make([]byte, base, need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:need]
	off := base
	data := b.data
	for lo := 0; lo < len(data); lo += b.d {
		row := data[lo : lo+b.d]
		for _, j := range c.cols {
			x := row[j]
			dst[off] = byte(x)
			dst[off+1] = byte(x >> 8)
			off += 2
		}
	}
	return dst
}
