package words

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// RowSource is a stream of rows in the paper's computational model:
// the data A is observed once, row by row, before any query arrives.
// Next returns the next row, or false when the stream is exhausted.
// The returned Word may be reused by the source between calls; callers
// that retain rows must Clone them.
type RowSource interface {
	// Dim returns the number of columns d.
	Dim() int
	// Alphabet returns the alphabet size Q.
	Alphabet() int
	// Next returns the next row of the stream.
	Next() (Word, bool)
}

// Resettable is implemented by row sources that can replay their
// stream from the beginning, which the experiment drivers use to feed
// the same instance to several summaries.
type Resettable interface {
	Reset()
}

// Drain pushes every row of src into observe and returns the number
// of rows streamed.
func Drain(src RowSource, observe func(Word)) int {
	n := 0
	for {
		w, ok := src.Next()
		if !ok {
			return n
		}
		observe(w)
		n++
	}
}

// Collect materializes up to max rows from src into a Table. A
// negative max collects the entire stream.
func Collect(src RowSource, max int) *Table {
	t := NewTable(src.Dim(), src.Alphabet())
	for max < 0 || t.NumRows() < max {
		w, ok := src.Next()
		if !ok {
			break
		}
		t.Append(w)
	}
	return t
}

// Table is an in-memory n×d array over [Q], stored row-major in a
// single flat slice. It is the Θ(nd) "retain everything" baseline of
// Section 3.1 and the backing store for exact reference computations.
type Table struct {
	d    int
	q    int
	data []uint16
}

// NewTable returns an empty table with d columns over alphabet [q].
func NewTable(d, q int) *Table {
	if d < 0 {
		panic("words: negative dimension")
	}
	if q < 2 || q > MaxAlphabet {
		panic(fmt.Sprintf("words: alphabet size %d out of range", q))
	}
	return &Table{d: d, q: q}
}

// Dim returns the number of columns d.
func (t *Table) Dim() int { return t.d }

// Alphabet returns the alphabet size Q.
func (t *Table) Alphabet() int { return t.q }

// NumRows returns the number of rows appended so far.
func (t *Table) NumRows() int {
	if t.d == 0 {
		return 0
	}
	return len(t.data) / t.d
}

// Append adds a copy of row w to the table.
func (t *Table) Append(w Word) {
	if len(w) != t.d {
		panic(fmt.Sprintf("words: row length %d != dimension %d", len(w), t.d))
	}
	t.data = append(t.data, w...)
}

// AppendBatch adds a copy of every row of b in one flat append — the
// amortized bulk form of Append. It panics if b's dimension differs
// from the table's.
func (t *Table) AppendBatch(b *Batch) {
	if b.Dim() != t.d {
		panic(fmt.Sprintf("words: batch dimension %d != table dimension %d", b.Dim(), t.d))
	}
	t.data = append(t.data, b.Symbols()...)
}

// AppendRepeated adds count copies of w.
func (t *Table) AppendRepeated(w Word, count int) {
	for i := 0; i < count; i++ {
		t.Append(w)
	}
}

// Row returns row i as a Word aliasing the table's storage; callers
// must not modify it.
func (t *Table) Row(i int) Word {
	return Word(t.data[i*t.d : (i+1)*t.d])
}

// Source returns a resettable RowSource replaying the table's rows.
func (t *Table) Source() RowSource {
	return &tableSource{t: t}
}

// Batch returns the table's rows as a Batch aliasing its storage (no
// copy), so bulk consumers — the batched key pipeline in particular —
// can walk the table without a per-row source loop. Callers must treat
// it as read-only and not retain it across table mutations. It panics
// if the table has zero columns (Batch requires d >= 1).
func (t *Table) Batch() *Batch {
	return BatchOf(t.d, t.data)
}

// SizeBytes returns the in-memory footprint of the row storage, the
// quantity the naïve baseline pays.
func (t *Table) SizeBytes() int { return 2 * len(t.data) }

type tableSource struct {
	t *Table
	i int
}

func (s *tableSource) Dim() int      { return s.t.d }
func (s *tableSource) Alphabet() int { return s.t.q }
func (s *tableSource) Reset()        { s.i = 0 }

func (s *tableSource) Next() (Word, bool) {
	if s.i >= s.t.NumRows() {
		return nil, false
	}
	w := s.t.Row(s.i)
	s.i++
	return w, true
}

// ReadCSV parses a table of comma-separated symbol values, one row per
// line; blank lines and lines starting with '#' are skipped. All rows
// must have the same width and symbols must lie in [q].
func ReadCSV(r io.Reader, q int) (*Table, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var t *Table
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		w := make(Word, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 16)
			if err != nil {
				return nil, fmt.Errorf("words: line %d field %d: %w", line, i+1, err)
			}
			if int(v) >= q {
				return nil, fmt.Errorf("words: line %d: symbol %d outside alphabet [%d]", line, v, q)
			}
			w[i] = uint16(v)
		}
		if t == nil {
			t = NewTable(len(w), q)
		}
		if len(w) != t.Dim() {
			return nil, fmt.Errorf("words: line %d has %d columns, expected %d", line, len(w), t.Dim())
		}
		t.Append(w)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t == nil {
		t = NewTable(0, q)
	}
	return t, nil
}

// WriteCSV writes the table in the format ReadCSV parses.
func (t *Table) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 4*t.d)
	for i := 0; i < t.NumRows(); i++ {
		row := t.Row(i)
		buf = buf[:0]
		for j, x := range row {
			if j > 0 {
				buf = append(buf, ',')
			}
			buf = appendUint(buf, uint64(x))
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FuncSource adapts a generator function to RowSource. The generator
// is called with the running row index and must return (row, true) or
// (nil, false) at end of stream.
type FuncSource struct {
	D int
	Q int
	F func(i int) (Word, bool)
	i int
}

// Dim returns the number of columns d.
func (s *FuncSource) Dim() int { return s.D }

// Alphabet returns the alphabet size Q.
func (s *FuncSource) Alphabet() int { return s.Q }

// Reset rewinds the stream to the beginning.
func (s *FuncSource) Reset() { s.i = 0 }

// Next returns the next generated row.
func (s *FuncSource) Next() (Word, bool) {
	w, ok := s.F(s.i)
	if !ok {
		return nil, false
	}
	s.i++
	return w, true
}

// Concat returns a RowSource that streams each source in turn. All
// sources must agree on dimension and alphabet.
func Concat(srcs ...RowSource) RowSource {
	if len(srcs) == 0 {
		panic("words: Concat needs at least one source")
	}
	d, q := srcs[0].Dim(), srcs[0].Alphabet()
	for _, s := range srcs[1:] {
		if s.Dim() != d || s.Alphabet() != q {
			panic("words: Concat sources disagree on shape")
		}
	}
	return &concatSource{srcs: srcs}
}

type concatSource struct {
	srcs []RowSource
	i    int
}

func (c *concatSource) Dim() int      { return c.srcs[0].Dim() }
func (c *concatSource) Alphabet() int { return c.srcs[0].Alphabet() }

func (c *concatSource) Next() (Word, bool) {
	for c.i < len(c.srcs) {
		if w, ok := c.srcs[c.i].Next(); ok {
			return w, true
		}
		c.i++
	}
	return nil, false
}

func (c *concatSource) Reset() {
	for _, s := range c.srcs {
		if r, ok := s.(Resettable); ok {
			r.Reset()
		} else {
			panic("words: Concat source is not resettable")
		}
	}
	c.i = 0
}
