package words

import "fmt"

// Batch is a flat buffer of rows: n rows of a fixed dimension d stored
// row-major in one []uint16 backing array with stride d. It is the
// unit of amortized ingestion — building rows into a Batch and feeding
// summaries through their batched path (core.BatchObserver) replaces
// one allocation, one clone, and one handoff per row with one per
// batch.
//
// A Batch is a mutable builder (Append/AppendRow/Reset) whose row
// views alias its storage; consumers of a Batch must therefore not
// retain rows across the producer's next mutation — the same contract
// RowSource already states for streamed rows.
type Batch struct {
	d    int
	data []uint16
}

// NewBatch returns an empty batch of rows with d columns, with
// capacity preallocated for capacityRows rows. It panics if d < 1,
// matching the summary shapes the batch feeds.
func NewBatch(d, capacityRows int) *Batch {
	if d < 1 {
		panic(fmt.Sprintf("words: batch dimension %d < 1", d))
	}
	if capacityRows < 0 {
		capacityRows = 0
	}
	return &Batch{d: d, data: make([]uint16, 0, d*capacityRows)}
}

// BatchOf wraps an existing flat row-major symbol slice as a batch
// without copying. It panics if d < 1 or len(symbols) is not a
// multiple of d — both programmer errors, like Table's shape panics.
func BatchOf(d int, symbols []uint16) *Batch {
	if d < 1 {
		panic(fmt.Sprintf("words: batch dimension %d < 1", d))
	}
	if len(symbols)%d != 0 {
		panic(fmt.Sprintf("words: %d symbols do not form whole rows of %d", len(symbols), d))
	}
	return &Batch{d: d, data: symbols}
}

// Dim returns the number of columns d.
func (b *Batch) Dim() int { return b.d }

// Len returns the number of rows currently in the batch.
func (b *Batch) Len() int { return len(b.data) / b.d }

// Append adds a copy of row w. It panics if len(w) != Dim().
func (b *Batch) Append(w Word) {
	if len(w) != b.d {
		panic(fmt.Sprintf("words: row length %d != batch dimension %d", len(w), b.d))
	}
	b.data = append(b.data, w...)
}

// AppendRow extends the batch by one zeroed row and returns it as a
// writable view into the batch's storage, so decoders can fill rows
// in place without a per-row staging slice. The view is invalidated
// by the next Append/AppendRow (the backing array may be regrown).
func (b *Batch) AppendRow() Word {
	n := len(b.data)
	for i := 0; i < b.d; i++ {
		b.data = append(b.data, 0)
	}
	return Word(b.data[n : n+b.d])
}

// Row returns row i as a view aliasing the batch's storage; callers
// must not modify it or retain it across batch mutations.
func (b *Batch) Row(i int) Word {
	return Word(b.data[i*b.d : (i+1)*b.d])
}

// Slice returns the sub-batch of rows [lo, hi) sharing b's storage.
func (b *Batch) Slice(lo, hi int) *Batch {
	return &Batch{d: b.d, data: b.data[lo*b.d : hi*b.d]}
}

// Symbols returns the flat row-major backing array (length Len()·Dim()).
// It aliases the batch's storage; callers must treat it as read-only.
func (b *Batch) Symbols() []uint16 { return b.data }

// Reset empties the batch, retaining its backing capacity for reuse.
func (b *Batch) Reset() { b.data = b.data[:0] }

// Bind rebinds b to wrap an existing flat row-major symbol slice
// without copying, with the same shape checks as BatchOf. It lets a
// long-lived Batch (an engine worker's, or a pooled decoder's) adopt a
// recycled arena instead of allocating a fresh *Batch per chunk.
func (b *Batch) Bind(d int, symbols []uint16) {
	if d < 1 {
		panic(fmt.Sprintf("words: batch dimension %d < 1", d))
	}
	if len(symbols)%d != 0 {
		panic(fmt.Sprintf("words: %d symbols do not form whole rows of %d", len(symbols), d))
	}
	b.d = d
	b.data = symbols
}

// Clone returns a copy of the batch sharing no storage with b.
func (b *Batch) Clone() *Batch {
	return &Batch{d: b.d, data: append([]uint16(nil), b.data...)}
}

// Validate checks that every symbol of every row lies in [q].
func (b *Batch) Validate(q int) error {
	for i, x := range b.data {
		if int(x) >= q {
			return fmt.Errorf("words: row %d symbol %d outside alphabet [%d]", i/b.d, x, q)
		}
	}
	return nil
}
