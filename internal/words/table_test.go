package words

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableAppendAndRow(t *testing.T) {
	tb := NewTable(3, 4)
	tb.Append(Word{1, 2, 3})
	tb.Append(Word{0, 0, 0})
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	if !tb.Row(0).Equal(Word{1, 2, 3}) || !tb.Row(1).Equal(Word{0, 0, 0}) {
		t.Fatalf("rows: %v %v", tb.Row(0), tb.Row(1))
	}
	if tb.SizeBytes() != 12 {
		t.Fatalf("SizeBytes = %d", tb.SizeBytes())
	}
}

func TestTableAppendCopies(t *testing.T) {
	tb := NewTable(2, 2)
	w := Word{1, 0}
	tb.Append(w)
	w[0] = 0
	if !tb.Row(0).Equal(Word{1, 0}) {
		t.Fatal("Append must copy the row")
	}
}

func TestTableAppendWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable(3, 2).Append(Word{1})
}

func TestAppendRepeated(t *testing.T) {
	tb := NewTable(1, 2)
	tb.AppendRepeated(Word{1}, 5)
	if tb.NumRows() != 5 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableSourceResets(t *testing.T) {
	tb := NewTable(2, 3)
	tb.Append(Word{1, 2})
	tb.Append(Word{2, 0})
	src := tb.Source()
	n1 := Drain(src, func(Word) {})
	src.(Resettable).Reset()
	n2 := Drain(src, func(Word) {})
	if n1 != 2 || n2 != 2 {
		t.Fatalf("drained %d then %d rows", n1, n2)
	}
}

func TestCollectLimits(t *testing.T) {
	tb := NewTable(1, 2)
	for i := 0; i < 10; i++ {
		tb.Append(Word{uint16(i % 2)})
	}
	if got := Collect(tb.Source(), 4).NumRows(); got != 4 {
		t.Fatalf("Collect(4) = %d rows", got)
	}
	if got := Collect(tb.Source(), -1).NumRows(); got != 10 {
		t.Fatalf("Collect(-1) = %d rows", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := NewTable(3, 10)
	tb.Append(Word{1, 2, 3})
	tb.Append(Word{9, 0, 4})
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 2 || !back.Row(1).Equal(Word{9, 0, 4}) {
		t.Fatalf("round trip: %v", back)
	}
}

func TestReadCSVValidation(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), 10); err == nil {
		t.Fatal("ragged rows must error")
	}
	if _, err := ReadCSV(strings.NewReader("1,12\n"), 10); err == nil {
		t.Fatal("symbol outside alphabet must error")
	}
	if _, err := ReadCSV(strings.NewReader("1,x\n"), 10); err == nil {
		t.Fatal("non-numeric must error")
	}
	tb, err := ReadCSV(strings.NewReader("# comment\n\n1,2\n"), 10)
	if err != nil || tb.NumRows() != 1 {
		t.Fatalf("comments/blanks: %v %v", tb, err)
	}
}

func TestFuncSource(t *testing.T) {
	src := &FuncSource{D: 1, Q: 5, F: func(i int) (Word, bool) {
		if i >= 3 {
			return nil, false
		}
		return Word{uint16(i)}, true
	}}
	var got []uint16
	Drain(src, func(w Word) { got = append(got, w[0]) })
	if len(got) != 3 || got[2] != 2 {
		t.Fatalf("drained %v", got)
	}
	src.Reset()
	if n := Drain(src, func(Word) {}); n != 3 {
		t.Fatalf("after reset drained %d", n)
	}
}

func TestConcatStreamsInOrder(t *testing.T) {
	a := NewTable(1, 3)
	a.Append(Word{0})
	b := NewTable(1, 3)
	b.Append(Word{1})
	b.Append(Word{2})
	src := Concat(a.Source(), b.Source())
	var got []uint16
	Drain(src, func(w Word) { got = append(got, w[0]) })
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("concat order: %v", got)
	}
	src.(Resettable).Reset()
	if n := Drain(src, func(Word) {}); n != 3 {
		t.Fatalf("reset drained %d", n)
	}
}

func TestConcatShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Concat(NewTable(1, 2).Source(), NewTable(2, 2).Source())
}
