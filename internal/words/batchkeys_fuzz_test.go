package words

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzAppendBatchKeysEquivalence drives the batched key builder with
// arbitrary shapes and symbols and checks the pipeline contract it
// advertises: the flat arena it emits is byte-for-byte the
// concatenation of per-row ProjectInto + AppendKey. Every batched
// ingest path (sketch members, subset summaries, frequency vectors)
// depends on this equality for its own batch ≡ row guarantees.
func FuzzAppendBatchKeysEquivalence(f *testing.F) {
	f.Add(uint8(3), uint8(0b101), []byte{1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0})
	f.Add(uint8(1), uint8(0b1), []byte{})
	f.Add(uint8(4), uint8(0), []byte{0xff, 0xff, 0, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, dRaw, colMask uint8, symBytes []byte) {
		d := int(dRaw)%8 + 1
		var cols []int
		for j := 0; j < d; j++ {
			if colMask&(1<<j) != 0 {
				cols = append(cols, j)
			}
		}
		c := MustColumnSet(d, cols...)
		// Decode whole rows from the raw bytes: two bytes per symbol.
		n := len(symBytes) / (2 * d)
		data := make([]uint16, n*d)
		for i := range data {
			data[i] = binary.LittleEndian.Uint16(symBytes[2*i:])
		}
		b := BatchOf(d, data)

		got := AppendBatchKeys([]byte{0xAA}, b, c) // non-empty dst: must append
		want := []byte{0xAA}
		dst := make(Word, c.Len())
		for i := 0; i < n; i++ {
			b.Row(i).ProjectInto(c, dst)
			want = AppendKey(want, dst, FullColumnSet(c.Len()))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("d=%d cols=%v n=%d:\nbatched %#v\nper-row %#v", d, cols, n, got, want)
		}
	})
}
