package words

import (
	"testing"
)

func TestBatchAppendAndRows(t *testing.T) {
	b := NewBatch(3, 2)
	if b.Dim() != 3 || b.Len() != 0 {
		t.Fatalf("fresh batch: dim %d len %d", b.Dim(), b.Len())
	}
	b.Append(Word{1, 2, 3})
	b.Append(Word{4, 5, 6})
	if b.Len() != 2 {
		t.Fatalf("len %d, want 2", b.Len())
	}
	if !b.Row(0).Equal(Word{1, 2, 3}) || !b.Row(1).Equal(Word{4, 5, 6}) {
		t.Fatalf("rows %v, %v", b.Row(0), b.Row(1))
	}
	// Append copies: mutating the source must not change the batch.
	src := Word{7, 8, 9}
	b.Append(src)
	src[0] = 99
	if !b.Row(2).Equal(Word{7, 8, 9}) {
		t.Fatalf("batch aliases appended row: %v", b.Row(2))
	}
}

func TestBatchAppendRowInPlace(t *testing.T) {
	b := NewBatch(2, 4)
	row := b.AppendRow()
	if len(row) != 2 || row[0] != 0 || row[1] != 0 {
		t.Fatalf("AppendRow must return a zeroed row, got %v", row)
	}
	row[0], row[1] = 3, 4
	if !b.Row(0).Equal(Word{3, 4}) {
		t.Fatalf("in-place fill lost: %v", b.Row(0))
	}
}

func TestBatchSliceSharesStorage(t *testing.T) {
	b := NewBatch(2, 4)
	for i := uint16(0); i < 4; i++ {
		b.Append(Word{i, i + 10})
	}
	s := b.Slice(1, 3)
	if s.Len() != 2 || s.Dim() != 2 {
		t.Fatalf("slice shape %d×%d", s.Len(), s.Dim())
	}
	if !s.Row(0).Equal(Word{1, 11}) || !s.Row(1).Equal(Word{2, 12}) {
		t.Fatalf("slice rows %v, %v", s.Row(0), s.Row(1))
	}
	// Views alias; Clone does not.
	c := b.Clone()
	b.Row(0)[0] = 77
	if s2 := b.Slice(0, 1); s2.Row(0)[0] != 77 {
		t.Fatal("Slice must alias the batch")
	}
	if c.Row(0)[0] != 0 {
		t.Fatal("Clone must not alias the batch")
	}
}

func TestBatchOfAndSymbols(t *testing.T) {
	flat := []uint16{1, 2, 3, 4, 5, 6}
	b := BatchOf(3, flat)
	if b.Len() != 2 || !b.Row(1).Equal(Word{4, 5, 6}) {
		t.Fatalf("BatchOf: len %d row %v", b.Len(), b.Row(1))
	}
	if got := b.Symbols(); len(got) != 6 || &got[0] != &flat[0] {
		t.Fatal("Symbols must return the backing array")
	}
}

func TestBatchResetKeepsCapacity(t *testing.T) {
	b := NewBatch(4, 8)
	for i := 0; i < 8; i++ {
		b.Append(make(Word, 4))
	}
	before := cap(b.Symbols())
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("len after reset %d", b.Len())
	}
	for i := 0; i < 8; i++ {
		b.Append(make(Word, 4))
	}
	if cap(b.Symbols()) != before {
		t.Fatalf("reset lost capacity: %d -> %d", before, cap(b.Symbols()))
	}
}

func TestBatchValidate(t *testing.T) {
	b := NewBatch(2, 2)
	b.Append(Word{0, 1})
	b.Append(Word{1, 2})
	if err := b.Validate(3); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(2); err == nil {
		t.Fatal("symbol 2 outside [2] must fail validation")
	}
}

func TestBatchShapePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("NewBatch d=0", func() { NewBatch(0, 4) })
	mustPanic("BatchOf ragged", func() { BatchOf(3, make([]uint16, 4)) })
	mustPanic("Append wrong width", func() {
		b := NewBatch(3, 1)
		b.Append(Word{1, 2})
	})
	mustPanic("AppendBatch wrong dim", func() {
		tb := NewTable(2, 4)
		tb.AppendBatch(NewBatch(3, 1))
	})
}

func TestTableAppendBatch(t *testing.T) {
	tb := NewTable(2, 4)
	tb.Append(Word{3, 3})
	b := NewBatch(2, 2)
	b.Append(Word{0, 1})
	b.Append(Word{2, 0})
	tb.AppendBatch(b)
	if tb.NumRows() != 3 {
		t.Fatalf("rows %d, want 3", tb.NumRows())
	}
	if !tb.Row(1).Equal(Word{0, 1}) || !tb.Row(2).Equal(Word{2, 0}) {
		t.Fatalf("batch rows lost: %v, %v", tb.Row(1), tb.Row(2))
	}
	// The table copied the batch: later batch reuse must not reach it.
	b.Row(0)[0] = 9
	if !tb.Row(1).Equal(Word{0, 1}) {
		t.Fatal("table aliases batch storage")
	}
}
