package words

import (
	"bytes"
	"testing"
)

// TestAppendKeyGolden pins the projection-key encoding to literal
// bytes: two little-endian bytes per projected symbol, in column-set
// order (ascending columns). The encoding is a wire-visible contract —
// frequency vectors, sketch fingerprints, and serialized summaries all
// derive from these bytes — so a change must fail loudly here, not
// just shift every hash in tandem.
func TestAppendKeyGolden(t *testing.T) {
	k1 := AppendKey(nil, Word{1, 2, 3, 4}, MustColumnSet(4, 0, 2))
	if want := []byte{0x01, 0x00, 0x03, 0x00}; !bytes.Equal(k1, want) {
		t.Errorf("key over columns {0,2}: %#v, want %#v", k1, want)
	}
	// Columns are kept sorted regardless of argument order, and both
	// bytes of a wide symbol land low byte first.
	k2 := AppendKey(nil, Word{0x0102, 0x0304, 0x0506}, MustColumnSet(3, 2, 0, 1))
	if want := []byte{0x02, 0x01, 0x04, 0x03, 0x06, 0x05}; !bytes.Equal(k2, want) {
		t.Errorf("full-width key: %#v, want %#v", k2, want)
	}
	// Empty column set: empty key, buffer untouched.
	if k := AppendKey(nil, Word{7}, MustColumnSet(1)); len(k) != 0 {
		t.Errorf("empty column set produced key %#v", k)
	}
}
