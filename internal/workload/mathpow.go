package workload

import "math"

// mathPow is math.Pow, isolated so synthetic.go's hot loops read
// without a package-qualified call chain in the generator closures.
func mathPow(x, y float64) float64 { return math.Pow(x, y) }
