package workload

import (
	"testing"

	"repro/internal/combin"
	"repro/internal/freq"
	"repro/internal/rng"
	"repro/internal/words"
)

func TestF0InstanceInvariants(t *testing.T) {
	src := rng.New(1)
	for _, inT := range []bool{true, false} {
		inst, err := NewF0Instance(10, 3, 5, 6, inT, src)
		if err != nil {
			t.Fatal(err)
		}
		if len(inst.T) != 6 {
			t.Fatalf("|T| = %d", len(inst.T))
		}
		found := false
		for _, w := range inst.T {
			if w.Equal(inst.Y) {
				found = true
			}
		}
		if found != inT {
			t.Fatalf("y in T = %v, want %v", found, inT)
		}
		if inst.Query.Len() != 3 {
			t.Fatalf("|S| = %d, want k", inst.Query.Len())
		}
		// Query is supp(y).
		for _, j := range inst.Y.Support() {
			if !inst.Query.Contains(j) {
				t.Fatal("query must be supp(y)")
			}
		}
	}
}

// TestTheorem41Separation is the executable heart of Theorem 4.1:
// F0(A, S) = Q^k exactly when y ∈ T and at most k·Q^{k-1} otherwise.
func TestTheorem41Separation(t *testing.T) {
	src := rng.New(2)
	for trial := 0; trial < 5; trial++ {
		for _, inT := range []bool{true, false} {
			inst, err := NewF0Instance(12, 3, 6, 8, inT, src)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := inst.Source()
			if err != nil {
				t.Fatal(err)
			}
			f0 := float64(freq.FromSource(stream, inst.Query).Support())
			if inT {
				if f0 != inst.ThresholdHigh() {
					t.Fatalf("y in T: F0 = %v, want exactly Q^k = %v", f0, inst.ThresholdHigh())
				}
			} else if f0 > inst.ThresholdLow() {
				t.Fatalf("y not in T: F0 = %v exceeds k*Q^(k-1) = %v", f0, inst.ThresholdLow())
			}
		}
	}
}

func TestF0InstanceRowCount(t *testing.T) {
	src := rng.New(3)
	inst, err := NewF0Instance(10, 3, 4, 5, true, src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := inst.RowCount()
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(5) * combin.MustPow(4, 3)
	if n != want {
		t.Fatalf("RowCount = %d, want %d", n, want)
	}
	if inst.ApproxFactor() != 4.0/3.0 {
		t.Fatalf("ApproxFactor = %v", inst.ApproxFactor())
	}
}

func TestF0InstanceValidation(t *testing.T) {
	src := rng.New(4)
	if _, err := NewF0Instance(5, 0, 4, 2, true, src); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := NewF0Instance(5, 5, 4, 2, true, src); err == nil {
		t.Fatal("k=d must error")
	}
	if _, err := NewF0Instance(5, 2, 4, 100, true, src); err == nil {
		t.Fatal("|T| > |B(d,k)| must error")
	}
}

// TestAlphabetReductionPreservesF0 verifies the Corollary 4.4 claim:
// the [Q] → [q']^L digit encoding preserves projected F0 exactly
// while multiplying dimensionality by L.
func TestAlphabetReductionPreservesF0(t *testing.T) {
	src := rng.New(5)
	for _, inT := range []bool{true, false} {
		inst, err := NewF0Instance(10, 3, 8, 6, inT, src)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := inst.Source()
		if err != nil {
			t.Fatal(err)
		}
		base := freq.FromSource(stream, inst.Query).Support()

		red, err := inst.NewAlphabetReduction(2)
		if err != nil {
			t.Fatal(err)
		}
		if red.Digits() != 3 || red.Dim() != 30 {
			t.Fatalf("L = %d, d' = %d", red.Digits(), red.Dim())
		}
		reduced := freq.FromSource(red, red.ExpandQuery(inst.Query)).Support()
		if base != reduced {
			t.Fatalf("F0 changed under alphabet reduction: %d vs %d", base, reduced)
		}
	}
}

func TestAlphabetReductionValidation(t *testing.T) {
	src := rng.New(6)
	inst, _ := NewF0Instance(8, 2, 4, 3, true, src)
	if _, err := inst.NewAlphabetReduction(1); err == nil {
		t.Fatal("q' < 2 must error")
	}
	if _, err := inst.NewAlphabetReduction(4); err == nil {
		t.Fatal("q' >= Q must error")
	}
}

func TestHHInstanceShape(t *testing.T) {
	src := rng.New(7)
	p := HHParams{D: 32, Eps: 0.25, Gamma: 0.05, TSize: 6, InT: true}
	inst, err := NewHHInstance(p, src)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Weight() != 8 {
		t.Fatalf("weight = %d, want εd = 8", inst.Weight())
	}
	// Query is the complement of supp(y).
	if inst.Query.Len() != 32-8 {
		t.Fatalf("|S| = %d", inst.Query.Len())
	}
	for _, j := range inst.Y.Support() {
		if inst.Query.Contains(j) {
			t.Fatal("query must avoid supp(y)")
		}
	}
	if inst.RowCount() != uint64(7)<<8 {
		t.Fatalf("RowCount = %d", inst.RowCount())
	}
	if len(inst.ZeroPattern()) != inst.Query.Len() {
		t.Fatal("zero pattern length mismatch")
	}
}

// TestTheorem53ZeroPatternFrequency: when y ∈ T, 0_S occurs at least
// 2^{εd} times (all of star(y) projects to it); when y ∉ T it stays
// far below.
func TestTheorem53ZeroPatternFrequency(t *testing.T) {
	src := rng.New(8)
	var counts [2]int64
	for i, inT := range []bool{true, false} {
		inst, err := NewHHInstance(HHParams{D: 32, Eps: 0.25, Gamma: 0.05, TSize: 6, InT: inT}, src)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := inst.Source()
		if err != nil {
			t.Fatal(err)
		}
		v := freq.FromSource(stream, inst.Query)
		zero := string(words.AppendKey(nil, inst.ZeroPattern(), words.FullColumnSet(inst.Query.Len())))
		counts[i] = v.Count(zero)
		if inT && counts[i] < 1<<8 {
			t.Fatalf("y in T: f(0_S) = %d < 2^εd = %d", counts[i], 1<<8)
		}
	}
	if counts[1]*2 > counts[0] {
		t.Fatalf("weak separation: %d vs %d", counts[0], counts[1])
	}
}

func TestFpInstanceShape(t *testing.T) {
	src := rng.New(9)
	inst, err := NewFpInstance(HHParams{D: 32, Eps: 0.25, Gamma: 0.05, TSize: 6, InT: false}, src)
	if err != nil {
		t.Fatal(err)
	}
	// Query is supp(y) for the p<1 construction.
	if inst.Query.Len() != inst.Weight() {
		t.Fatalf("|S| = %d, want weight %d", inst.Query.Len(), inst.Weight())
	}
	if inst.ThresholdHigh() != 256 {
		t.Fatalf("threshold = %v", inst.ThresholdHigh())
	}
}

func TestMPrimeSize(t *testing.T) {
	src := rng.New(10)
	inst, err := NewFpInstance(HHParams{D: 24, Eps: 0.25, Gamma: 0.05, TSize: 4, InT: true}, src)
	if err != nil {
		t.Fatal(err)
	}
	// Weight 6: M' counts binary words of length 6 with weight >= 3:
	// C(6,3)+C(6,4)+C(6,5)+C(6,6) = 20+15+6+1 = 42.
	if got := len(inst.MPrime()); got != 42 {
		t.Fatalf("|M'| = %d, want 42", got)
	}
}
