package workload

import (
	"testing"

	"repro/internal/freq"
	"repro/internal/words"
)

func collectKeys(src words.RowSource) []string {
	full := words.FullColumnSet(src.Dim())
	var keys []string
	words.Drain(src, func(w words.Word) {
		keys = append(keys, string(words.AppendKey(nil, w, full)))
	})
	return keys
}

func TestUniformShapeAndDeterminism(t *testing.T) {
	src := Uniform(6, 4, 100, 42)
	if src.Dim() != 6 || src.Alphabet() != 4 {
		t.Fatalf("shape %d %d", src.Dim(), src.Alphabet())
	}
	first := collectKeys(src)
	if len(first) != 100 {
		t.Fatalf("rows %d", len(first))
	}
	src.(words.Resettable).Reset()
	second := collectKeys(src)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
	// Symbols must respect the alphabet.
	src.(words.Resettable).Reset()
	words.Drain(src, func(w words.Word) {
		for _, x := range w {
			if x >= 4 {
				t.Fatalf("symbol %d outside alphabet", x)
			}
		}
	})
}

func TestZipfPatternsSkew(t *testing.T) {
	src := ZipfPatterns(8, 3, 5000, 50, 1.3, 7)
	v := freq.FromSource(src, words.FullColumnSet(8))
	if v.Total() != 5000 {
		t.Fatalf("total %d", v.Total())
	}
	if v.Support() > 50 {
		t.Fatalf("support %d exceeds catalog", v.Support())
	}
	// The head pattern must dominate: top count >= 5x the median.
	entries := v.Entries()
	var max int64
	for _, e := range entries {
		if e.Count > max {
			max = e.Count
		}
	}
	if max < 5000/10 {
		t.Fatalf("head pattern count %d too small for Zipf(1.3)", max)
	}
}

func TestClusteredConcentratesOnSignal(t *testing.T) {
	cfg := ClusteredConfig{
		D: 10, Q: 4, N: 3000, Clusters: 4,
		Signal: []int{0, 1, 2, 3}, Noise: 0.02, Seed: 11,
	}
	src, err := Clustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	table := words.Collect(src, -1)
	sig := words.MustColumnSet(10, 0, 1, 2, 3)
	off := words.MustColumnSet(10, 6, 7, 8, 9)
	f0sig := freq.FromTable(table, sig).Support()
	f0off := freq.FromTable(table, off).Support()
	// On the signal subspace the distinct count collapses toward the
	// cluster count; off-subspace it approaches Q^4 = 256.
	if f0sig > 60 {
		t.Fatalf("signal F0 = %d, want near %d clusters", f0sig, cfg.Clusters)
	}
	if f0off < 200 {
		t.Fatalf("off-subspace F0 = %d, want near 256", f0off)
	}
	if _, err := Clustered(ClusteredConfig{D: 4, Q: 2, N: 0}); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestCensusCreatesHeavyCombos(t *testing.T) {
	cfg := CensusConfig{
		N: 4000, Card: []int{4, 4, 4, 4, 4}, Groups: 5, Skew: 1.2, Mixing: 0.05, Seed: 13,
	}
	src, err := Census(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := freq.FromSource(src, words.FullColumnSet(5))
	hits := v.HeavyHitters(1, 0.05)
	if len(hits) == 0 {
		t.Fatal("census workload must contain over-represented attribute combinations")
	}
	if _, err := Census(CensusConfig{N: 10, Card: []int{1}, Groups: 2}); err == nil {
		t.Fatal("cardinality < 2 must error")
	}
}

func TestLinkabilityUniqueFraction(t *testing.T) {
	cfg := LinkabilityConfig{
		N: 3000, Card: []int{50, 50, 50}, UniqueFraction: 0.2, CommonProfiles: 5, Seed: 17,
	}
	src, err := Linkability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := freq.FromSource(src, words.FullColumnSet(3))
	// ~20% of rows are near-unique; F0 should be ≈ 5 + 0.2*3000.
	if v.Support() < 400 || v.Support() > 700 {
		t.Fatalf("F0 = %d, want ~605", v.Support())
	}
	if _, err := Linkability(LinkabilityConfig{N: 10, Card: []int{5}, UniqueFraction: 2, CommonProfiles: 1}); err == nil {
		t.Fatal("unique fraction > 1 must error")
	}
}
