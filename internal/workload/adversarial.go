package workload

import (
	"fmt"
	"math"

	"repro/internal/codes"
	"repro/internal/rng"
	"repro/internal/words"
)

// F0Instance is an executable Theorem 4.1 / Corollary 4.2–4.3
// construction: Alice's set T ⊆ B(d, k), Bob's test codeword y with
// query S = supp(y), and the input array A = star_Q(T) as a stream.
// When y ∈ T the projected F0 on S is exactly Q^k; when y ∉ T it is
// at most k·Q^{k-1} (the separation Δ = Q/k of Equation (3)).
type F0Instance struct {
	D, K, Q int
	T       []codes.Codeword
	Y       codes.Codeword
	InT     bool
	Query   words.ColumnSet
}

// NewF0Instance builds an instance. tSize is |T|; inT chooses whether
// Bob's word is planted in T (the two Index cases). q must exceed k
// for the theorem's approximation factor Q/k to exceed 1.
func NewF0Instance(d, k, q, tSize int, inT bool, src *rng.Source) (*F0Instance, error) {
	if k < 1 || k >= d {
		return nil, fmt.Errorf("workload: weight k=%d outside [1, d)", k)
	}
	if tSize < 1 {
		return nil, fmt.Errorf("workload: |T| must be positive")
	}
	base, err := codes.NewConstantWeightCode(d, k)
	if err != nil {
		return nil, err
	}
	size, err := base.Size()
	if err == nil && uint64(tSize+1) > size {
		return nil, fmt.Errorf("workload: |T|+1 = %d exceeds |B(%d,%d)| = %d", tSize+1, d, k, size)
	}
	// Sample T ∪ {candidate y} as distinct codewords.
	seen := make(map[string]bool)
	var pool []codes.Codeword
	for len(pool) < tSize+1 {
		c := base.Sample(src)
		key := c.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		pool = append(pool, c)
	}
	inst := &F0Instance{D: d, K: k, Q: q}
	if inT {
		inst.T = pool[:tSize]
		inst.Y = pool[src.Intn(tSize)]
	} else {
		inst.T = pool[:tSize]
		inst.Y = pool[tSize]
	}
	inst.InT = inT
	inst.Query = inst.Y.SupportSet()
	return inst, nil
}

// Source streams A = star_Q(T).
func (i *F0Instance) Source() (*codes.StarSource, error) {
	return codes.NewStarSource(i.T, i.Q)
}

// RowCount returns |T|·Q^k, the instance size reported in Table 1.
func (i *F0Instance) RowCount() (uint64, error) {
	s, err := i.Source()
	if err != nil {
		return 0, err
	}
	return s.TotalRows()
}

// ThresholdHigh returns Q^k, the F0 value when y ∈ T.
func (i *F0Instance) ThresholdHigh() float64 {
	return math.Pow(float64(i.Q), float64(i.K))
}

// ThresholdLow returns k·Q^{k-1}, the Theorem 4.1 bound on F0 when
// y ∉ T.
func (i *F0Instance) ThresholdLow() float64 {
	return float64(i.K) * math.Pow(float64(i.Q), float64(i.K-1))
}

// ApproxFactor returns Δ = Q/k from Equation (3): any algorithm with
// a better approximation factor distinguishes the two cases.
func (i *F0Instance) ApproxFactor() float64 {
	return float64(i.Q) / float64(i.K)
}

// AlphabetReduction implements the Corollary 4.4 remapping: each
// symbol of [Q] expands to L = ⌈log_q′ Q⌉ digits over the smaller
// alphabet [q′], multiplying the dimensionality by L while preserving
// projected F0 exactly (the digit map is a bijection on symbols).
type AlphabetReduction struct {
	inner  *codes.StarSource
	qSmall int
	L      int
	buf    words.Word
}

// NewAlphabetReduction wraps the instance's star stream with the
// [Q] → [q′]^L encoding. It requires 2 ≤ qSmall < Q.
func (i *F0Instance) NewAlphabetReduction(qSmall int) (*AlphabetReduction, error) {
	if qSmall < 2 || qSmall >= i.Q {
		return nil, fmt.Errorf("workload: reduced alphabet %d outside [2, Q)", qSmall)
	}
	inner, err := i.Source()
	if err != nil {
		return nil, err
	}
	l := digitsNeeded(i.Q, qSmall)
	return &AlphabetReduction{inner: inner, qSmall: qSmall, L: l, buf: make(words.Word, i.D*l)}, nil
}

func digitsNeeded(q, base int) int {
	l, v := 0, 1
	for v < q {
		v *= base
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}

// Dim returns d′ = d·L.
func (a *AlphabetReduction) Dim() int { return a.inner.Dim() * a.L }

// Alphabet returns the reduced alphabet size q′.
func (a *AlphabetReduction) Alphabet() int { return a.qSmall }

// Digits returns L = ⌈log_q′ Q⌉, the dimensionality blow-up of
// Corollary 4.4.
func (a *AlphabetReduction) Digits() int { return a.L }

// Reset replays the stream.
func (a *AlphabetReduction) Reset() { a.inner.Reset() }

// Next expands the next inner row symbol-by-symbol (most significant
// digit first).
func (a *AlphabetReduction) Next() (words.Word, bool) {
	w, ok := a.inner.Next()
	if !ok {
		return nil, false
	}
	for j, x := range w {
		v := int(x)
		for t := a.L - 1; t >= 0; t-- {
			a.buf[j*a.L+t] = uint16(v % a.qSmall)
			v /= a.qSmall
		}
	}
	return a.buf, true
}

// ExpandQuery maps a column query over [d] to the corresponding
// digit-columns over [d·L].
func (a *AlphabetReduction) ExpandQuery(c words.ColumnSet) words.ColumnSet {
	var cols []int
	for _, j := range c.Columns() {
		for t := 0; t < a.L; t++ {
			cols = append(cols, j*a.L+t)
		}
	}
	return words.MustColumnSet(a.Dim(), cols...)
}

// HHInstance is the Theorem 5.3 construction (also used by Theorem
// 5.4's p > 1 case and Theorem 5.5's p > 1 case): a Lemma 3.2 random
// code, Alice's array holding 2^{εd} copies of the all-ones vector
// plus star₂(T), and Bob querying S = [d] \ supp(y). The all-zeros
// pattern 0_S is a constant-factor ℓp heavy hitter iff y ∈ T.
type HHInstance struct {
	D     int
	Eps   float64
	Code  *codes.Code
	T     []codes.Codeword
	Y     codes.Codeword
	InT   bool
	Query words.ColumnSet
}

// HHParams configures NewHHInstance.
type HHParams struct {
	D     int     // dimensionality
	Eps   float64 // codeword weight fraction ε
	Gamma float64 // Lemma 3.2 slack γ
	TSize int     // |T|
	InT   bool    // plant y in T?
}

// NewHHInstance samples the code and splits it into T and y.
func NewHHInstance(p HHParams, src *rng.Source) (*HHInstance, error) {
	code, err := codes.SampleRandomCode(codes.RandomCodeParams{
		D: p.D, Epsilon: p.Eps, Gamma: p.Gamma, Size: p.TSize + 1,
	}, src)
	if err != nil {
		return nil, err
	}
	all := code.Words()
	inst := &HHInstance{D: p.D, Eps: p.Eps, Code: code, InT: p.InT}
	inst.T = all[:p.TSize]
	if p.InT {
		inst.Y = inst.T[src.Intn(p.TSize)]
	} else {
		inst.Y = all[p.TSize]
	}
	inst.Query = inst.Y.ComplementSet()
	return inst, nil
}

// Weight returns the codeword weight εd.
func (i *HHInstance) Weight() int { return i.Y.Weight() }

// Source streams the instance: 2^{εd} copies of 1_d, then star₂(T).
func (i *HHInstance) Source() (words.RowSource, error) {
	star, err := codes.NewStarSource(i.T, 2)
	if err != nil {
		return nil, err
	}
	copies := 1 << uint(i.Weight())
	ones := make(words.Word, i.D)
	for j := range ones {
		ones[j] = 1
	}
	onesSrc := &words.FuncSource{
		D: i.D, Q: 2,
		F: func(n int) (words.Word, bool) {
			if n >= copies {
				return nil, false
			}
			return ones, true
		},
	}
	return words.Concat(onesSrc, star), nil
}

// ZeroPattern returns 0_S, the candidate heavy hitter, with length |S|.
func (i *HHInstance) ZeroPattern() words.Word {
	return make(words.Word, i.Query.Len())
}

// RowCount returns (|T|+1)·2^{εd}, the instance size of Remark 2.
func (i *HHInstance) RowCount() uint64 {
	return uint64(len(i.T)+1) << uint(i.Weight())
}

// FpInstance is the Theorem 5.4 construction for 0 < p < 1 (also
// Theorem 5.5's p < 1 case): A = star₂(T) with Bob querying
// S = supp(y). F_p is at least 2^{εd} when y ∈ T and provably smaller
// otherwise.
type FpInstance struct {
	D     int
	Eps   float64
	Code  *codes.Code
	T     []codes.Codeword
	Y     codes.Codeword
	InT   bool
	Query words.ColumnSet
}

// NewFpInstance samples the Lemma 3.2 code and assembles the instance.
func NewFpInstance(p HHParams, src *rng.Source) (*FpInstance, error) {
	code, err := codes.SampleRandomCode(codes.RandomCodeParams{
		D: p.D, Epsilon: p.Eps, Gamma: p.Gamma, Size: p.TSize + 1,
	}, src)
	if err != nil {
		return nil, err
	}
	all := code.Words()
	inst := &FpInstance{D: p.D, Eps: p.Eps, Code: code, InT: p.InT}
	inst.T = all[:p.TSize]
	if p.InT {
		inst.Y = inst.T[src.Intn(p.TSize)]
	} else {
		inst.Y = all[p.TSize]
	}
	inst.Query = inst.Y.SupportSet()
	return inst, nil
}

// Weight returns the codeword weight εd.
func (i *FpInstance) Weight() int { return i.Y.Weight() }

// Source streams A = star₂(T).
func (i *FpInstance) Source() (*codes.StarSource, error) {
	return codes.NewStarSource(i.T, 2)
}

// ThresholdHigh returns 2^{εd}, the F_p lower bound when y ∈ T
// (Case 2 of Theorem 5.4).
func (i *FpInstance) ThresholdHigh() float64 {
	return math.Exp2(float64(i.Weight()))
}

// MPrime returns the Theorem 5.5 test set M′ = {z ∈ star(y)
// restricted to S : |supp(z)| ≥ εd/2} as a set of pattern strings
// over the query columns; Bob checks whether sampled patterns land in
// it. The words returned have length |S| = εd.
func (i *FpInstance) MPrime() map[string]struct{} {
	w := i.Weight()
	half := (w + 1) / 2
	out := make(map[string]struct{})
	full := words.FullColumnSet(w)
	z := make(words.Word, w)
	for mask := uint64(0); mask < 1<<uint(w); mask++ {
		pc := 0
		for m := mask; m != 0; m &= m - 1 {
			pc++
		}
		if pc < half {
			continue
		}
		for b := 0; b < w; b++ {
			if mask&(1<<uint(b)) != 0 {
				z[b] = 1
			} else {
				z[b] = 0
			}
		}
		out[string(words.AppendKey(nil, z, full))] = struct{}{}
	}
	return out
}
