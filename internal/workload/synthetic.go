// Package workload generates the data the experiment suite runs on:
// synthetic streams exercising the paper's motivating scenarios
// (Section 1: bias auditing, privacy/linkability, subspace
// clustering), and the adversarial instances realizing every
// lower-bound construction of Sections 4 and 5. All sources are
// deterministic given their seed and resettable so the same instance
// can be replayed into several summaries.
package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/words"
)

// genSource is the common replayable generator: Reset re-derives the
// random stream from the stored seed, so every replay is identical.
type genSource struct {
	d, q int
	n    int
	seed uint64
	gen  func(src *rng.Source, i int, w words.Word)

	i   int
	src *rng.Source
	buf words.Word
}

func newGenSource(d, q, n int, seed uint64, gen func(*rng.Source, int, words.Word)) *genSource {
	g := &genSource{d: d, q: q, n: n, seed: seed, gen: gen}
	g.Reset()
	return g
}

// Dim returns the number of columns d.
func (g *genSource) Dim() int { return g.d }

// Alphabet returns the alphabet size Q.
func (g *genSource) Alphabet() int { return g.q }

// Reset replays the stream from the beginning.
func (g *genSource) Reset() {
	g.i = 0
	g.src = rng.New(g.seed)
	g.buf = make(words.Word, g.d)
}

// Next returns the next generated row; the slice is reused.
func (g *genSource) Next() (words.Word, bool) {
	if g.i >= g.n {
		return nil, false
	}
	g.gen(g.src, g.i, g.buf)
	g.i++
	return g.buf, true
}

// Uniform streams n i.i.d. uniform rows over [q]^d: the maximally
// diverse input for which projected F0 approaches q^|C|.
func Uniform(d, q, n int, seed uint64) words.RowSource {
	return newGenSource(d, q, n, seed, func(src *rng.Source, _ int, w words.Word) {
		for j := range w {
			w[j] = uint16(src.Intn(q))
		}
	})
}

// ZipfPatterns streams n rows drawn from a catalog of m random
// patterns with Zipf(s) frequencies: the skewed regime where heavy
// hitters exist and sampling-based estimation shines (Theorem 5.1).
func ZipfPatterns(d, q, n, m int, s float64, seed uint64) words.RowSource {
	master := rng.New(seed)
	catalog := make([]words.Word, m)
	for i := range catalog {
		row := make(words.Word, d)
		for j := range row {
			row[j] = uint16(master.Intn(q))
		}
		catalog[i] = row
	}
	return newGenSource(d, q, n, master.Uint64(), func(src *rng.Source, _ int, w words.Word) {
		// Rebuild the Zipf sampler lazily per Reset via the source's
		// deterministic stream: inverse-CDF each draw.
		copy(w, catalog[zipfDraw(src, m, s)])
	})
}

// zipfDraw draws a Zipf(s) rank over [0, m) by inverse CDF on a
// harmonic prefix; m is small in all uses so the O(m) scan is fine
// and keeps the draw stateless (hence trivially resettable).
func zipfDraw(src *rng.Source, m int, s float64) int {
	u := src.Float64()
	total := 0.0
	for i := 0; i < m; i++ {
		total += 1 / powf(float64(i+1), s)
	}
	acc := 0.0
	for i := 0; i < m; i++ {
		acc += 1 / powf(float64(i+1), s) / total
		if u < acc {
			return i
		}
	}
	return m - 1
}

func powf(x, y float64) float64 {
	if y == 1 {
		return x
	}
	// math.Pow via exp/log would be fine; use the stdlib through a
	// tiny alias to keep imports tidy.
	return mathPow(x, y)
}

// ClusteredConfig parameterizes Clustered.
type ClusteredConfig struct {
	D        int     // total columns
	Q        int     // alphabet
	N        int     // rows
	Clusters int     // number of hidden clusters
	Signal   []int   // the hidden subspace the clusters live in
	Noise    float64 // per-signal-column corruption probability
	Seed     uint64
}

// Clustered streams rows that are tightly clustered on a hidden
// column subset and uniform elsewhere — the subspace-clustering
// motivation of Section 1: on the signal columns F0 is ≈ Clusters,
// while off-subspace columns inflate apparent diversity.
func Clustered(cfg ClusteredConfig) (words.RowSource, error) {
	if cfg.Clusters < 1 || cfg.N < 1 || len(cfg.Signal) == 0 {
		return nil, fmt.Errorf("workload: invalid clustered config %+v", cfg)
	}
	sig, err := words.NewColumnSet(cfg.D, cfg.Signal...)
	if err != nil {
		return nil, err
	}
	master := rng.New(cfg.Seed)
	centers := make([]words.Word, cfg.Clusters)
	for i := range centers {
		c := make(words.Word, cfg.D)
		for _, j := range sig.Columns() {
			c[j] = uint16(master.Intn(cfg.Q))
		}
		centers[i] = c
	}
	isSignal := make([]bool, cfg.D)
	for _, j := range sig.Columns() {
		isSignal[j] = true
	}
	return newGenSource(cfg.D, cfg.Q, cfg.N, master.Uint64(), func(src *rng.Source, _ int, w words.Word) {
		center := centers[src.Intn(cfg.Clusters)]
		for j := 0; j < cfg.D; j++ {
			if isSignal[j] {
				if src.Float64() < cfg.Noise {
					w[j] = uint16(src.Intn(cfg.Q))
				} else {
					w[j] = center[j]
				}
			} else {
				w[j] = uint16(src.Intn(cfg.Q))
			}
		}
	}), nil
}

// CensusConfig parameterizes Census.
type CensusConfig struct {
	N    int   // rows (individuals)
	Card []int // cardinality of each categorical attribute
	// Groups is the number of latent demographic groups; attribute
	// values correlate within a group, creating over-represented
	// attribute combinations (the "bias" heavy hitters of Section 1).
	Groups int
	// Skew is the Zipf exponent of the group-size distribution.
	Skew float64
	// Mixing is the probability an attribute ignores the group and is
	// drawn uniformly (higher = weaker correlations).
	Mixing float64
	Seed   uint64
}

// Census streams categorical records with group-correlated attributes
// for the bias/diversity scenario. The alphabet is max(Card).
func Census(cfg CensusConfig) (words.RowSource, error) {
	if cfg.N < 1 || len(cfg.Card) == 0 || cfg.Groups < 1 {
		return nil, fmt.Errorf("workload: invalid census config %+v", cfg)
	}
	q := 2
	for _, c := range cfg.Card {
		if c < 2 {
			return nil, fmt.Errorf("workload: attribute cardinality %d < 2", c)
		}
		if c > q {
			q = c
		}
	}
	d := len(cfg.Card)
	master := rng.New(cfg.Seed)
	// Each group deterministically prefers one value per attribute.
	pref := make([][]uint16, cfg.Groups)
	for g := range pref {
		pref[g] = make([]uint16, d)
		for j := 0; j < d; j++ {
			pref[g][j] = uint16(master.Intn(cfg.Card[j]))
		}
	}
	return newGenSource(d, q, cfg.N, master.Uint64(), func(src *rng.Source, _ int, w words.Word) {
		g := zipfDraw(src, cfg.Groups, cfg.Skew)
		for j := 0; j < d; j++ {
			if src.Float64() < cfg.Mixing {
				w[j] = uint16(src.Intn(cfg.Card[j]))
			} else {
				w[j] = pref[g][j]
			}
		}
	}), nil
}

// LinkabilityConfig parameterizes Linkability.
type LinkabilityConfig struct {
	N    int   // records
	Card []int // per-column cardinalities (quasi-identifiers)
	// UniqueFraction of records get fully random values (likely
	// unique combinations — the re-identification risk); the rest are
	// drawn from a small pool of common profiles.
	UniqueFraction float64
	CommonProfiles int
	Seed           uint64
}

// Linkability streams records mixing a few common quasi-identifier
// profiles with a fraction of near-unique ones, the KHyperLogLog-style
// re-identifiability scenario of Section 1: projected F0 relative to N
// measures how identifying a column subset is.
func Linkability(cfg LinkabilityConfig) (words.RowSource, error) {
	if cfg.N < 1 || len(cfg.Card) == 0 || cfg.CommonProfiles < 1 {
		return nil, fmt.Errorf("workload: invalid linkability config %+v", cfg)
	}
	if cfg.UniqueFraction < 0 || cfg.UniqueFraction > 1 {
		return nil, fmt.Errorf("workload: unique fraction %v outside [0,1]", cfg.UniqueFraction)
	}
	q := 2
	for _, c := range cfg.Card {
		if c > q {
			q = c
		}
	}
	d := len(cfg.Card)
	master := rng.New(cfg.Seed)
	profiles := make([][]uint16, cfg.CommonProfiles)
	for i := range profiles {
		profiles[i] = make([]uint16, d)
		for j := 0; j < d; j++ {
			profiles[i][j] = uint16(master.Intn(cfg.Card[j]))
		}
	}
	return newGenSource(d, q, cfg.N, master.Uint64(), func(src *rng.Source, _ int, w words.Word) {
		if src.Float64() < cfg.UniqueFraction {
			for j := 0; j < d; j++ {
				w[j] = uint16(src.Intn(cfg.Card[j]))
			}
			return
		}
		p := profiles[src.Intn(cfg.CommonProfiles)]
		copy(w, p)
	}), nil
}
