// Package benchsuite holds the repository's reproducible benchmark
// workloads as plain functions over *testing.B, so the same code runs
// two ways: wrapped as ordinary Benchmark* functions in the root
// bench_test.go (go test -bench), and driven by cmd/bench through
// testing.Benchmark to produce the committed BENCH_<n>.json trajectory
// files. Every workload here times one row (ingestion benches) or one
// batch (query benches) per iteration, so ns/op convert directly to
// rows/sec or batches/sec.
package benchsuite

import (
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/words"
)

const (
	benchDim   = 16
	benchQ     = 4
	benchPool  = 1 << 12 // distinct rows cycled through the benches
	ingestRows = 256     // batch size for batched ingestion
)

// benchEngine builds the standard bench engine: 4 shards over bounded
// reservoir-sample summaries, so per-row work is one RNG draw and the
// state (and hence merge cost) stays constant regardless of b.N — what
// the benches then measure is the engine machinery itself.
func benchEngine(b *testing.B, cfg engine.Config) *engine.Sharded {
	b.Helper()
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Queue == 0 {
		cfg.Queue = 1024
	}
	eng, err := engine.NewSharded(func(shard int) (core.Summary, error) {
		return core.NewSample(benchDim, benchQ, 256, uint64(shard)+1, core.WithReservoir())
	}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// benchRows builds the shared row pool.
func benchRows() *words.Batch {
	data := make([]uint16, benchPool*benchDim)
	src := rng.New(35)
	for i := range data {
		data[i] = uint16(src.Intn(benchQ))
	}
	return words.BatchOf(benchDim, data)
}

// IngestRow times per-row engine ingestion (one clone, one atomic
// increment, one channel send per row). One iteration is one row.
func IngestRow(b *testing.B) {
	eng := benchEngine(b, engine.Config{})
	defer eng.Close()
	rows := benchRows()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Observe(rows.Row(i % benchPool))
	}
	if _, err := eng.Flush(); err != nil {
		b.Fatal(err)
	}
}

// IngestBatch times batched engine ingestion in chunks of 256 rows
// (one arena copy and one channel send per chunk). One iteration is
// one row, so ns/op compare directly with IngestRow.
func IngestBatch(b *testing.B) {
	eng := benchEngine(b, engine.Config{})
	defer eng.Close()
	rows := benchRows()
	b.ReportAllocs()
	b.ResetTimer()
	for lo := 0; lo < b.N; lo += ingestRows {
		n := ingestRows
		if lo+n > b.N {
			n = b.N - lo
		}
		eng.ObserveBatch(rows.Slice(0, n))
	}
	if _, err := eng.Flush(); err != nil {
		b.Fatal(err)
	}
}

// SketchIngest times the batched key pipeline through a sketch-backed
// summary: a Subset summary over the C(16, 2) = 120 subset KMVs
// consumes 256-row batches directly (no engine), so ns/op isolates the
// per-(member, row) projection + fingerprint + sketch cost that the
// member-major loops pay — the number the key-pipeline refactor moves.
// One iteration is one row (each row fans out to all 120 members).
func SketchIngest(b *testing.B) {
	sum, err := core.NewSubset(benchDim, benchQ, 2, 0.1, 42, 0)
	if err != nil {
		b.Fatal(err)
	}
	rows := benchRows()
	b.ReportAllocs()
	b.ResetTimer()
	for lo := 0; lo < b.N; lo += ingestRows {
		n := ingestRows
		if lo+n > b.N {
			n = b.N - lo
		}
		sum.ObserveBatch(rows.Slice(0, n))
	}
}

// benchQueries is a small mixed read batch over the bench engine's
// reservoir-sample shards: point-frequency probes across distinct
// projections (the class the sample summary answers).
func benchQueries() []engine.Query {
	var qs []engine.Query
	for i := 0; i < 4; i++ {
		c := words.MustColumnSet(benchDim, i, i+4, i+8)
		qs = append(qs, engine.Query{
			Kind:    engine.KindFrequency,
			Cols:    c,
			Pattern: make(words.Word, 3),
		})
	}
	return qs
}

// QueryWarm times QueryBatch against a settled engine: the epoch is
// current and the result cache is hot, so this is the read fast path.
// One iteration is one 4-query batch.
func QueryWarm(b *testing.B) {
	eng := benchEngine(b, engine.Config{})
	defer eng.Close()
	rows := benchRows()
	eng.ObserveBatch(rows.Slice(0, benchPool))
	qs := benchQueries()
	if res := eng.QueryBatch(qs); res[0].Err != nil {
		b.Fatal(res[0].Err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := eng.QueryBatch(qs); res[0].Err != nil {
			b.Fatal(res[0].Err)
		}
	}
}

// PlannerRouted times planner-routed query batches over a
// multi-subspace engine with a cold cache (CacheSize 1), so every
// iteration exercises plan → evaluate across exact, covering, and
// full-fallback routes. One iteration is one 16-query batch.
func PlannerRouted(b *testing.B) {
	eng, err := engine.NewSharded(func(int) (core.Summary, error) {
		return core.NewExact(12, 2)
	}, engine.Config{Shards: 4, CacheSize: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	subspaces := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}}
	for _, cols := range subspaces {
		if err := eng.RegisterSubspace(words.MustColumnSet(12, cols...), func(int) (core.Summary, error) {
			return core.NewExact(12, 2)
		}); err != nil {
			b.Fatal(err)
		}
	}
	src := rng.New(33)
	w := make(words.Word, 12)
	for i := 0; i < 20000; i++ {
		for j := range w {
			w[j] = uint16(src.Intn(2))
		}
		eng.Observe(w)
	}
	var qs []engine.Query
	for i := 0; i < 4; i++ {
		exact := words.MustColumnSet(12, subspaces[i]...)
		cover := words.MustColumnSet(12, i, i+1)
		qs = append(qs,
			engine.Query{Kind: engine.KindF0, Cols: exact},
			engine.Query{Kind: engine.KindF0, Cols: cover},
			engine.Query{Kind: engine.KindFp, Cols: exact, P: 2},
			engine.Query{Kind: engine.KindFp, Cols: cover, P: 2})
	}
	if res := eng.QueryBatch(qs); res[0].Err != nil {
		b.Fatal(res[0].Err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := eng.QueryBatch(qs); res[0].Err != nil {
			b.Fatal(res[0].Err)
		}
	}
}

// WALAppend times write-ahead-log batch appends (256 rows per record,
// interval fsync — the daemon's default policy). One iteration is one
// row.
func WALAppend(b *testing.B) {
	dir, err := os.MkdirTemp("", "benchwal")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	wal, err := store.Open(store.Options{Dir: dir, Dim: benchDim, Alphabet: benchQ, Fsync: store.FsyncInterval})
	if err != nil {
		b.Fatal(err)
	}
	defer wal.Close()
	rows := benchRows()
	chunk := rows.Slice(0, ingestRows)
	b.ReportAllocs()
	b.ResetTimer()
	for lo := 0; lo < b.N; lo += ingestRows {
		if err := wal.AppendBatch(chunk); err != nil {
			b.Fatal(err)
		}
	}
}

// MixedMode selects the read-side configuration of MixedReadWrite.
type MixedMode int

// The mixed-workload variants. Comparing EpochReaders against
// IngestOnly measures how much the read load costs ingestion under the
// epoch read path; StrictReaders is the quiesce-on-every-read baseline
// the epoch refactor replaced.
const (
	// MixedIngestOnly runs the writer alone: the read-free ingestion
	// ceiling the other variants are measured against.
	MixedIngestOnly MixedMode = iota
	// MixedEpochReaders issues the read load against an engine with a
	// staleness budget: reads serve the published epoch lock-free.
	MixedEpochReaders
	// MixedStrictReaders issues the same read load against a strict
	// (zero-budget) engine: every read under write traffic rebuilds
	// through the worker quiesce barrier.
	MixedStrictReaders
)

// mixedReadEvery is the read cadence: one QueryBatch per this many
// ingested rows (a dashboard polling a busy writer, several hundred
// reads/sec at the measured ingest rates).
const mixedReadEvery = 8192

// mixedSampleT is the reservoir capacity of the mixed workload's
// summaries. It is deliberately large: per-row ingestion stays a
// cheap constant (one RNG draw), but cutting a snapshot merges four
// 8k-row reservoirs with the workers paused — the
// ingest-cheap/merge-expensive ratio where the quiesce barrier hurts
// most. Bounded state keeps the merge cost constant in b.N, which a
// benchmark requires (retain-everything summaries like Exact make
// rebuild cost grow with the iteration count and the numbers
// meaningless).
const mixedSampleT = 1 << 13

// MixedReadWrite times streaming row ingestion (the daemon's live
// /v1/observe path) under a fixed read load: one 4-query QueryBatch
// every 8192 ingested rows, issued between rows so the schedule is
// deterministic (time-based polling goroutines make single-core runs
// scheduler-noise-dominated; the -race stress test covers true
// read/write races). One iteration is one ingested row: ns/op is the
// cost of a row's share of the whole mixed workload, and the ns/read
// metric is the mean read latency.
//
// Under strict mode every read under write traffic pays a full
// rebuild — quiesce all workers, merge four reservoirs, re-evaluate
// the batch against a cold cache generation. Under a staleness budget
// rebuilds amortize to once per budget and the in-between reads are
// lock-free cache hits on the published epoch, so reads neither stall
// ingestion nor wait for it.
func MixedReadWrite(b *testing.B, mode MixedMode) {
	cfg := engine.Config{Shards: 4, Queue: 8}
	if mode == MixedEpochReaders {
		// Reads may lag ingestion by up to 1M rows before a rebuild
		// (under 200ms at the measured ingest rates); the benchmark's
		// answers stay bounded-stale, never wrong.
		cfg.MaxStalenessRows = 1 << 20
	}
	eng, err := engine.NewSharded(func(shard int) (core.Summary, error) {
		return core.NewSample(benchDim, benchQ, mixedSampleT, uint64(shard)+1, core.WithReservoir())
	}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	rows := benchRows()
	eng.ObserveBatch(rows.Slice(0, benchPool)) // settle a first epoch
	qs := benchQueries()
	if res := eng.QueryBatch(qs); res[0].Err != nil {
		b.Fatal(res[0].Err)
	}

	var readNS, reads int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Observe(rows.Row(i % benchPool))
		if mode != MixedIngestOnly && i%mixedReadEvery == 0 {
			t0 := time.Now()
			if res := eng.QueryBatch(qs); res[0].Err != nil {
				b.Fatal(res[0].Err)
			}
			readNS += int64(time.Since(t0))
			reads++
		}
	}
	// The final Flush stays inside the timed region: it waits for the
	// workers to fully process every enqueued row, so ns/op charges the
	// worker time reads steal (barrier pauses) instead of measuring
	// only the enqueue side, which a queue can hide.
	if _, err := eng.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if reads > 0 {
		b.ReportMetric(float64(readNS)/float64(reads), "ns/read")
	}
}
