package benchsuite

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
)

// ShipMode selects which half of the anti-entropy cost ClusterShipping
// measures.
type ShipMode int

const (
	// ShipChanged: every round finds fresh source state, so each
	// iteration pays the full shipping path — conditional GET, blob
	// transfer, envelope decode, and source absorb into the aggregator
	// engine.
	ShipChanged ShipMode = iota
	// ShipNotModified: the source is idle, so each iteration is one
	// If-None-Match probe answered 304 — the steady-state cost of an
	// anti-entropy round that ships nothing.
	ShipNotModified
)

// shipBlob marshals the bench engine's merged summary — a realistic
// /v1/summary payload (bounded reservoir state at d=16, same shape the
// other benches ingest into).
func shipBlob(b *testing.B) []byte {
	b.Helper()
	src := benchEngine(b, engine.Config{})
	defer src.Close()
	src.ObserveBatch(benchRows().Slice(0, benchPool))
	sum, err := src.Flush()
	if err != nil {
		b.Fatal(err)
	}
	blob, err := core.MarshalSummary(sum)
	if err != nil {
		b.Fatal(err)
	}
	return blob
}

// ClusterShipping times one aggregator anti-entropy round against an
// in-process ingest stand-in: an HTTP source serving a fixed summary
// blob under an epoch-seq ETag, pulled by the same cluster.Puller +
// AbsorbSource applier the projfreqd aggregator role runs. One
// iteration is one PullOnce round. In ShipChanged mode the source's
// ETag advances before every round (the blob bytes are identical —
// what varies between real epochs is content, not size — so the
// measured cost is transfer + decode + absorb, not marshalling); in
// ShipNotModified mode the ETag never moves after the priming pull, so
// ns/op is the pure probe cost the conditional-GET protocol pays for
// unchanged shards. The gap between the two modes is the per-round
// saving the ETag anti-entropy buys.
func ClusterShipping(b *testing.B, mode ShipMode) {
	blob := shipBlob(b)
	rowsHdr := fmt.Sprint(benchPool)
	var seq atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tag := fmt.Sprintf(`"bench-%d"`, seq.Load())
		w.Header().Set("ETag", tag)
		w.Header().Set("X-Epoch-Rows", rowsHdr)
		if r.Header.Get("If-None-Match") == tag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(blob)
	}))
	defer ts.Close()

	agg := benchEngine(b, engine.Config{})
	defer agg.Close()
	puller, err := cluster.NewPuller([]string{ts.URL}, cluster.ApplierFunc(func(source string, body []byte) error {
		sum, err := core.UnmarshalSummary(body)
		if err != nil {
			return err
		}
		return agg.AbsorbSource(source, sum)
	}), 30*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := puller.PullOnce(ctx); err != nil { // prime the stored ETag
		b.Fatal(err)
	}
	if mode == ShipChanged {
		b.SetBytes(int64(len(blob)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mode == ShipChanged {
			seq.Add(1)
		}
		if err := puller.PullOnce(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := puller.Stats()[0]
	switch mode {
	case ShipChanged:
		if st.Changed < int64(b.N) {
			b.Fatalf("changed mode shipped %d blobs over %d rounds", st.Changed, b.N)
		}
	case ShipNotModified:
		if st.NotModified < int64(b.N) {
			b.Fatalf("not-modified mode got %d 304s over %d rounds", st.NotModified, b.N)
		}
	}
	b.ReportMetric(float64(len(blob)), "blob-bytes")
}
