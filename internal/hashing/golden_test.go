package hashing

import "testing"

// TestFingerprint64Golden pins the fingerprint function to literal
// expected values. Fingerprints are a wire-visible contract: serialized
// sketches store hashes of these fingerprints, and the batched arena
// pass (AppendFingerprints64) promises byte-identical results — a
// change that silently altered Fingerprint64 would invalidate every
// persisted summary and checkpoint while all the relative-equality
// tests kept passing.
func TestFingerprint64Golden(t *testing.T) {
	golden := []struct {
		in   []byte
		want uint64
	}{
		{nil, 0xf52a15e9a9b5e89b},
		{[]byte{}, 0xf52a15e9a9b5e89b},
		{[]byte{0}, 0x4b32c4df3f01430b},
		{[]byte{0xff}, 0xc2476c29b2a5df40},
		{[]byte("a"), 0x832be066bd43a3b8},
		{[]byte("abc"), 0x2c2104b7ed2e2f86},
		{[]byte{0, 1, 2, 3, 4, 5, 6, 7}, 0xd7314f83df4233f1},
		{[]byte("projected frequency"), 0x342d124caa7076b9},
	}
	for _, g := range golden {
		if got := Fingerprint64(g.in); got != g.want {
			t.Errorf("Fingerprint64(%q) = %#016x, want %#016x", g.in, got, g.want)
		}
	}
}

// TestAppendFingerprints64Golden pins the batched arena pass to the
// same literals through a packed three-record arena.
func TestAppendFingerprints64Golden(t *testing.T) {
	arena := []byte{0, 0xff, 'a'}
	got := AppendFingerprints64(nil, arena, 3, 1)
	want := []uint64{0x4b32c4df3f01430b, 0xc2476c29b2a5df40, 0x832be066bd43a3b8}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: %#016x, want %#016x", i, got[i], want[i])
		}
	}
	// Zero-stride records are empty keys: one empty-string fingerprint
	// per record.
	empty := AppendFingerprints64(nil, nil, 2, 0)
	for i, fp := range empty {
		if fp != 0xf52a15e9a9b5e89b {
			t.Errorf("empty record %d: %#016x", i, fp)
		}
	}
}
