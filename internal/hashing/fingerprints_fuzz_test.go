package hashing

import "testing"

// FuzzAppendFingerprints64Equivalence checks the batched arena pass
// against per-record Fingerprint64 over arbitrary packings: identical
// fingerprints, in identical order, for every (n, stride) split of the
// input bytes. Sketch state built through AddBatch is bit-identical to
// the per-row path exactly because of this equality.
func FuzzAppendFingerprints64Equivalence(f *testing.F) {
	f.Add([]byte("abcdefgh"), uint8(4))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0, 1, 2, 3, 4, 5}, uint8(1))
	f.Fuzz(func(t *testing.T, arena []byte, strideRaw uint8) {
		stride := int(strideRaw) % 17
		var n int
		if stride == 0 {
			n = int(strideRaw) // empty records; arena must be empty
			arena = arena[:0]
		} else {
			n = len(arena) / stride
			arena = arena[:n*stride]
		}
		got := AppendFingerprints64([]uint64{0xDEAD}, arena, n, stride) // non-empty dst: must append
		if len(got) != 1+n || got[0] != 0xDEAD {
			t.Fatalf("appended %d fingerprints, want %d", len(got)-1, n)
		}
		for i := 0; i < n; i++ {
			want := Fingerprint64(arena[i*stride : (i+1)*stride])
			if got[1+i] != want {
				t.Fatalf("record %d: %#016x, want %#016x", i, got[1+i], want)
			}
		}
	})
}
