// Package hashing implements the hash families the sketch substrate
// needs: 64-bit fingerprints of patterns, seeded mixers, k-wise
// independent polynomial hashing over the Mersenne prime 2^61-1, and
// ±1 sign hashes. Everything is deterministic given its seed, so
// sketches serialize to reproducible byte strings.
package hashing

import (
	"math/bits"

	"repro/internal/rng"
)

// Fingerprint64 hashes an arbitrary byte string to 64 bits using an
// FNV-1a pass strengthened by a splitmix64 finalizer. Collision
// probability across the ≤ 2^30 distinct patterns any experiment
// touches is far below every error budget in the paper's bounds.
func Fingerprint64(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return rng.Mix64(h ^ uint64(len(b))*0x9e3779b97f4a7c15)
}

// AppendFingerprints64 fingerprints n consecutive stride-byte records
// of arena and appends the n hashes onto dst, returning the extended
// slice. Each hash equals Fingerprint64(arena[i*stride:(i+1)*stride])
// exactly — one flat pass with no per-record slice headers, the second
// stage of the batched key pipeline over the arena that
// words.AppendBatchKeys builds. n is explicit so the zero-stride case
// (an empty column set, where every record is the empty key) still
// yields one fingerprint per record. It panics if len(arena) != n*stride.
func AppendFingerprints64(dst []uint64, arena []byte, n, stride int) []uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	if len(arena) != n*stride {
		panic("hashing: arena length is not n*stride")
	}
	lenMix := uint64(stride) * 0x9e3779b97f4a7c15
	off := 0
	for i := 0; i < n; i++ {
		h := uint64(offset)
		for end := off + stride; off < end; off++ {
			h ^= uint64(arena[off])
			h *= prime
		}
		dst = append(dst, rng.Mix64(h^lenMix))
	}
	return dst
}

// Mixer is a seeded bijective 64→64 bit mixer: h(x) = mix(x ^ seed1)
// rotated and xored with seed2. It is cheap, full-avalanche, and the
// workhorse hash for KMV/HLL-style sketches, which only need
// uniformity of individual hash values.
type Mixer struct {
	seed1 uint64
	seed2 uint64
}

// NewMixer derives a mixer from the given seed.
func NewMixer(seed uint64) Mixer {
	s := rng.NewSplitMix64(seed)
	return Mixer{seed1: s.Uint64(), seed2: s.Uint64() | 1}
}

// Hash returns the mixed value of x.
func (m Mixer) Hash(x uint64) uint64 {
	h := rng.Mix64(x ^ m.seed1)
	h = bits.RotateLeft64(h, 23) * m.seed2
	return rng.Mix64(h)
}

// MersennePrime61 is 2^61 - 1, the modulus of the polynomial family.
const MersennePrime61 = (1 << 61) - 1

// reduce61 computes (hi·2^64 + lo) mod 2^61-1 for any 128-bit input.
func reduce61(hi, lo uint64) uint64 {
	// 2^61 ≡ 1 (mod p) so 2^64 ≡ 8 and 2^125 ≡ 8. Writing
	// hi = a·2^61 + b gives x ≡ 8a + 8b + (lo mod p) with every term
	// comfortably below 2^62, so the sum cannot wrap.
	a, b := hi>>61, hi&MersennePrime61
	h := b << 3 // b < 2^61 so no overflow
	r := (lo & MersennePrime61) + (lo >> 61) + (h & MersennePrime61) + (h >> 61) + a<<3
	for r >= MersennePrime61 {
		r = (r & MersennePrime61) + (r >> 61)
	}
	return r
}

func mulmod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return reduce61(hi, lo)
}

// PolyHash is a k-wise independent hash family over Z_{2^61-1}: a
// degree-(k-1) polynomial with coefficients drawn uniformly from the
// field. Evaluations at distinct points are k-wise independent, the
// property the CountSketch/AMS analyses require.
type PolyHash struct {
	coef []uint64 // degree-ascending; len(coef) = k
}

// NewPolyHash draws a k-wise independent function using randomness
// from seed. k must be at least 1.
func NewPolyHash(seed uint64, k int) *PolyHash {
	if k < 1 {
		panic("hashing: k-wise independence requires k >= 1")
	}
	src := rng.New(seed)
	coef := make([]uint64, k)
	for i := range coef {
		coef[i] = src.Uint64n(MersennePrime61)
	}
	// A zero leading coefficient only reduces the effective degree for
	// that single draw; the family remains k-wise independent, so no
	// correction is needed.
	return &PolyHash{coef: coef}
}

// Hash evaluates the polynomial at x (reduced into the field).
func (p *PolyHash) Hash(x uint64) uint64 {
	xr := reduce61(0, x)
	var acc uint64
	for i := len(p.coef) - 1; i >= 0; i-- {
		acc = mulmod61(acc, xr)
		acc += p.coef[i]
		if acc >= MersennePrime61 {
			acc -= MersennePrime61
		}
	}
	return acc
}

// Bucket maps x to one of w buckets using the polynomial family, with
// the standard multiply-shift range reduction on top.
func (p *PolyHash) Bucket(x uint64, w int) int {
	h := p.Hash(x)
	hi, _ := bits.Mul64(h<<3, uint64(w)) // <<3 spreads the 61-bit value over 64
	return int(hi)
}

// Sign maps x to ±1 using the low bit of the polynomial value; with a
// 4-wise independent polynomial this yields the 4-wise independent
// sign family the AMS F2 analysis needs.
func (p *PolyHash) Sign(x uint64) int {
	if p.Hash(x)&1 == 1 {
		return 1
	}
	return -1
}

// Coefficients returns a copy of the polynomial coefficients; used by
// serialization.
func (p *PolyHash) Coefficients() []uint64 {
	out := make([]uint64, len(p.coef))
	copy(out, p.coef)
	return out
}

// PolyHashFromCoefficients rebuilds a PolyHash from serialized
// coefficients.
func PolyHashFromCoefficients(coef []uint64) *PolyHash {
	c := make([]uint64, len(coef))
	copy(c, coef)
	return &PolyHash{coef: c}
}
