package hashing

import (
	"math"
	"math/big"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestFingerprint64Deterministic(t *testing.T) {
	a := Fingerprint64([]byte("hello"))
	b := Fingerprint64([]byte("hello"))
	if a != b {
		t.Fatal("fingerprint must be deterministic")
	}
	if Fingerprint64([]byte("hello")) == Fingerprint64([]byte("hellp")) {
		t.Fatal("single-byte change must alter the fingerprint")
	}
	if Fingerprint64([]byte{}) == Fingerprint64([]byte{0}) {
		t.Fatal("length must matter")
	}
	if Fingerprint64([]byte{0, 0}) == Fingerprint64([]byte{0}) {
		t.Fatal("trailing zeros must matter")
	}
}

func TestFingerprint64NoEasyCollisions(t *testing.T) {
	seen := make(map[uint64][]byte, 1<<16)
	var buf [2]byte
	for i := 0; i < 1<<16; i++ {
		buf[0], buf[1] = byte(i), byte(i>>8)
		h := Fingerprint64(buf[:])
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision between %v and %v", prev, buf)
		}
		seen[h] = []byte{buf[0], buf[1]}
	}
}

func TestMixerDeterminismAndSeeds(t *testing.T) {
	m1 := NewMixer(1)
	m2 := NewMixer(1)
	m3 := NewMixer(2)
	if m1.Hash(42) != m2.Hash(42) {
		t.Fatal("same seed, same hash")
	}
	if m1.Hash(42) == m3.Hash(42) {
		t.Fatal("different seeds should differ on a given input")
	}
}

func TestMixerAvalanche(t *testing.T) {
	m := NewMixer(3)
	totalFlips := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		x := uint64(i) * 0x9e3779b97f4a7c15
		h1 := m.Hash(x)
		h2 := m.Hash(x ^ 1)
		totalFlips += bits.OnesCount64(h1 ^ h2)
	}
	avg := float64(totalFlips) / trials
	if math.Abs(avg-32) > 3 {
		t.Fatalf("avalanche average %v bits, want ~32", avg)
	}
}

func TestReduce61MatchesBigInt(t *testing.T) {
	p := new(big.Int).SetUint64(MersennePrime61)
	f := func(hi, lo uint64) bool {
		x := new(big.Int).SetUint64(hi)
		x.Lsh(x, 64)
		x.Add(x, new(big.Int).SetUint64(lo))
		want := new(big.Int).Mod(x, p).Uint64()
		got := reduce61(hi, lo)
		// reduce61 may return p itself ≡ 0; normalize.
		if got == MersennePrime61 {
			got = 0
		}
		return got == want
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMulmod61MatchesBigInt(t *testing.T) {
	p := new(big.Int).SetUint64(MersennePrime61)
	f := func(aRaw, bRaw uint64) bool {
		a := aRaw % MersennePrime61
		b := bRaw % MersennePrime61
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		got := mulmod61(a, b)
		if got == MersennePrime61 {
			got = 0
		}
		return got == want.Uint64()
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPolyHashDeterministic(t *testing.T) {
	h1 := NewPolyHash(5, 4)
	h2 := NewPolyHash(5, 4)
	h3 := NewPolyHash(6, 4)
	if h1.Hash(123) != h2.Hash(123) {
		t.Fatal("same seed must agree")
	}
	if h1.Hash(123) == h3.Hash(123) && h1.Hash(124) == h3.Hash(124) {
		t.Fatal("different seeds should differ somewhere")
	}
}

func TestPolyHashInField(t *testing.T) {
	h := NewPolyHash(7, 3)
	for i := uint64(0); i < 1000; i++ {
		if v := h.Hash(i); v >= MersennePrime61 {
			t.Fatalf("hash %d out of field", v)
		}
	}
}

func TestPolyHashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k < 1")
		}
	}()
	NewPolyHash(1, 0)
}

func TestBucketRange(t *testing.T) {
	f := func(seed, x uint64, wRaw uint16) bool {
		w := 1 + int(wRaw%1000)
		b := NewPolyHash(seed, 2).Bucket(x, w)
		return b >= 0 && b < w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketRoughlyUniform(t *testing.T) {
	h := NewPolyHash(11, 2)
	const w, draws = 16, 64000
	counts := make([]int, w)
	for i := uint64(0); i < draws; i++ {
		counts[h.Bucket(i, w)]++
	}
	expected := float64(draws) / w
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 dof, 99.9% critical ~37.7.
	if chi2 > 37.7 {
		t.Fatalf("bucket chi2 = %v", chi2)
	}
}

func TestSignBalance(t *testing.T) {
	h := NewPolyHash(13, 4)
	sum := 0
	const n = 100000
	for i := uint64(0); i < n; i++ {
		sum += h.Sign(i)
	}
	if math.Abs(float64(sum)) > 4*math.Sqrt(n) {
		t.Fatalf("sign bias: sum = %d over %d draws", sum, n)
	}
}

func TestSignPairwiseDecorrelation(t *testing.T) {
	// 4-wise independence implies E[s(x)s(y)] = 0 for x != y.
	h := NewPolyHash(17, 4)
	sum := 0
	const n = 100000
	for i := uint64(0); i < n; i++ {
		sum += h.Sign(i) * h.Sign(i+500000)
	}
	if math.Abs(float64(sum)) > 4*math.Sqrt(n) {
		t.Fatalf("pairwise sign correlation: %d", sum)
	}
}

func TestPolyHashSerializationRoundTrip(t *testing.T) {
	h := NewPolyHash(23, 5)
	back := PolyHashFromCoefficients(h.Coefficients())
	for i := uint64(0); i < 100; i++ {
		if h.Hash(i) != back.Hash(i) {
			t.Fatal("coefficients round trip must preserve the function")
		}
	}
	// Coefficients returns a copy.
	c := h.Coefficients()
	c[0] = 0
	if h.Coefficients()[0] == 0 && h.Coefficients()[0] != c[0] {
		t.Fatal("unexpected aliasing")
	}
}
