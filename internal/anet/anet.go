// Package anet implements Section 6 of the paper: α-nets over the
// power set of [d] (Definition 6.1), their size bound via the binary
// entropy function (Lemma 6.2), neighbour rounding of projection
// queries, the rounding-distortion bounds of Lemma 6.4, and the
// Algorithm 1 meta-summary that keeps a β-approximate sketch for every
// net member and answers arbitrary queries through an α-neighbour
// (Theorem 6.5).
package anet

import (
	"fmt"
	"math"
	"math/big"
	"math/bits"

	"repro/internal/combin"
	"repro/internal/words"
)

// Net is an α-net over P([d]): the family of subsets U with
// |U| ≤ d/2 − αd or |U| ≥ d/2 + αd. Every query C has a neighbour
// C′ in the net with |C Δ C′| ≤ ⌈αd⌉ (the ceiling is the integer-
// rounding cost discussed in DESIGN.md §6).
type Net struct {
	d     int
	alpha float64
	low   int // member iff size <= low ...
	high  int // ... or size >= high
}

// NewNet constructs the α-net for dimension d; α must lie in (0, 1/2).
func NewNet(d int, alpha float64) (*Net, error) {
	if d < 1 {
		return nil, fmt.Errorf("anet: dimension %d must be positive", d)
	}
	if !(alpha > 0 && alpha < 0.5) {
		return nil, fmt.Errorf("anet: alpha %v outside (0, 1/2)", alpha)
	}
	half := float64(d) / 2
	low := int(math.Floor(half - alpha*float64(d)))
	high := int(math.Ceil(half + alpha*float64(d)))
	if low < 0 {
		low = 0
	}
	if high > d {
		high = d
	}
	return &Net{d: d, alpha: alpha, low: low, high: high}, nil
}

// Dim returns d.
func (n *Net) Dim() int { return n.d }

// Alpha returns α.
func (n *Net) Alpha() float64 { return n.alpha }

// Low returns the largest member size below the excluded band.
func (n *Net) Low() int { return n.low }

// High returns the smallest member size above the excluded band.
func (n *Net) High() int { return n.high }

// ContainsSize reports whether subsets of the given size belong to
// the net.
func (n *Net) ContainsSize(size int) bool {
	return size <= n.low || size >= n.high
}

// Contains reports whether the query C itself is a net member, in
// which case answering it incurs no rounding distortion.
func (n *Net) Contains(c words.ColumnSet) bool {
	return n.ContainsSize(c.Len())
}

// MaxNeighborDistance returns the worst-case |C Δ C′| over all
// queries: max over band sizes of the distance to the nearer boundary.
func (n *Net) MaxNeighborDistance() int {
	worst := 0
	for s := n.low + 1; s < n.high; s++ {
		down := s - n.low
		up := n.high - s
		d := down
		if up < d {
			d = up
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// RoundingMode selects which net boundary an in-band query is rounded
// to — the ablation axis called out in DESIGN.md §5. Shrinking yields
// an under-approximation of F0 (patterns merge), growing an
// over-approximation (patterns split); RoundNearest minimizes the
// distortion exponent.
type RoundingMode int

// The supported rounding modes.
const (
	// RoundNearest picks the closer boundary, ties shrink (default).
	RoundNearest RoundingMode = iota
	// RoundDown always shrinks to the lower boundary.
	RoundDown
	// RoundUp always grows to the upper boundary.
	RoundUp
)

// String names the mode.
func (m RoundingMode) String() string {
	switch m {
	case RoundDown:
		return "down"
	case RoundUp:
		return "up"
	default:
		return "nearest"
	}
}

// Neighbor returns an α-neighbour C′ ∈ N of C and |C Δ C′| under
// RoundNearest. Members map to themselves with distance 0.
func (n *Net) Neighbor(c words.ColumnSet) (words.ColumnSet, int) {
	return n.NeighborMode(c, RoundNearest)
}

// NeighborMode is Neighbor with an explicit rounding mode. Shrinking
// removes the largest-index columns and growing adds the
// smallest-index absent columns, so the rounding is deterministic.
func (n *Net) NeighborMode(c words.ColumnSet, mode RoundingMode) (words.ColumnSet, int) {
	if c.Dim() != n.d {
		panic(fmt.Sprintf("anet: query dimension %d != net dimension %d", c.Dim(), n.d))
	}
	size := c.Len()
	if n.ContainsSize(size) {
		return c, 0
	}
	down := size - n.low
	up := n.high - size
	shrink := down <= up
	switch mode {
	case RoundDown:
		shrink = true
	case RoundUp:
		shrink = false
	}
	if shrink {
		// Shrink to size low: drop the largest columns.
		cols := c.Columns()
		out := words.MustColumnSet(n.d, cols[:n.low]...)
		return out, down
	}
	// Grow to size high: add the smallest absent columns.
	cols := c.Columns()
	present := make(map[int]bool, len(cols))
	for _, j := range cols {
		present[j] = true
	}
	need := n.high - size
	for j := 0; j < n.d && need > 0; j++ {
		if !present[j] {
			cols = append(cols, j)
			need--
		}
	}
	out := words.MustColumnSet(n.d, cols...)
	return out, up
}

// SizeExact returns |N| exactly as a big integer:
// Σ_{i≤low} C(d,i) + Σ_{i≥high} C(d,i).
func (n *Net) SizeExact() *big.Int {
	total := combin.BinomialSum(n.d, n.low)
	// Subsets of size ≥ high = subsets of complement size ≤ d-high.
	total.Add(total, combin.BinomialSum(n.d, n.d-n.high))
	return total
}

// LogSizeBound returns the Lemma 6.2 bound log2|N| ≤ H(1/2−α)·d + 1.
func (n *Net) LogSizeBound() float64 {
	return combin.Entropy(0.5-n.alpha)*float64(n.d) + 1
}

// RelativeSpace returns |N| / 2^d, the x-axis of Figure 1's
// right-hand pane, computed exactly then converted to float.
func (n *Net) RelativeSpace() float64 {
	size := new(big.Float).SetInt(n.SizeExact())
	full := new(big.Float).SetInt(new(big.Int).Lsh(big.NewInt(1), uint(n.d)))
	out, _ := new(big.Float).Quo(size, full).Float64()
	return out
}

// EnumerateMasks invokes fn with every net member as a bitmask, in
// increasing numeric order; requires d ≤ 30. Enumeration stops early
// if fn returns false.
func (n *Net) EnumerateMasks(fn func(mask uint64) bool) error {
	return combin.SubsetMasks(n.d, n.ContainsSize, fn)
}

// MemberCount returns |N| as an int; it requires d ≤ 62 so the count
// fits, and is the number of sketches Algorithm 1 maintains.
func (n *Net) MemberCount() (int, error) {
	size := n.SizeExact()
	if !size.IsInt64() {
		return 0, fmt.Errorf("anet: net size %v exceeds int64", size)
	}
	return int(size.Int64()), nil
}

// Distortion returns the Lemma 6.4 rounding-distortion bound r for a
// query answered at symmetric-difference distance dist from its
// neighbour, for binary data (the alphabet the lemma is stated for):
//
//	F0:        2^dist
//	Fp, p>1:   2^{dist(p-1)}
//	Fp, p<1:   2^{dist(1-p)}
//	F1:        1 (no distortion; F1 is independent of C)
func Distortion(p float64, dist int) float64 {
	return DistortionQ(p, dist, 2)
}

// DistortionQ generalizes Distortion to alphabet [q]: each column in
// the symmetric difference can split (or merge) a pattern's mass
// across up to q values, so the per-column factor 2 of Lemma 6.4
// becomes q. (The Jensen argument in the lemma's proof goes through
// verbatim with 2^{αd} replaced by q^{αd}.)
func DistortionQ(p float64, dist, q int) float64 {
	if dist < 0 {
		panic("anet: negative distance")
	}
	if q < 2 {
		panic("anet: alphabet must be at least binary")
	}
	lg := math.Log2(float64(q))
	switch {
	case p == 0:
		return math.Exp2(float64(dist) * lg)
	case p == 1:
		return 1
	case p > 1:
		return math.Exp2(float64(dist) * lg * (p - 1))
	default:
		return math.Exp2(float64(dist) * lg * (1 - p))
	}
}

// DistortionBound returns the worst-case distortion of the net for
// moment order p: Distortion(p, MaxNeighborDistance()), the factor
// 2^{αd} (for F0) of Theorem 6.5 in its integer-rounded form.
func (n *Net) DistortionBound(p float64) float64 {
	return Distortion(p, n.MaxNeighborDistance())
}

// maskColumns converts a bitmask to a ColumnSet over [d].
func maskColumns(mask uint64, d int) words.ColumnSet {
	cols := make([]int, 0, bits.OnesCount64(mask))
	for m := mask; m != 0; m &= m - 1 {
		cols = append(cols, bits.TrailingZeros64(m))
	}
	return words.MustColumnSet(d, cols...)
}
