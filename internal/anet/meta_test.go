package anet

import (
	"strings"
	"testing"

	"repro/internal/freq"
	"repro/internal/rng"
	"repro/internal/sketch"
	"repro/internal/words"
)

func kmvFactory(seed uint64) Factory {
	return func(id uint64) Estimator {
		return sketch.NewKMV(64, seed^rng.Mix64(id))
	}
}

func buildMeta(t *testing.T, d int, alpha float64, rows []words.Word) (*MetaSummary, *words.Table) {
	t.Helper()
	n, err := NewNet(d, alpha)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMetaSummary(n, kmvFactory(7))
	if err != nil {
		t.Fatal(err)
	}
	tb := words.NewTable(d, 2)
	for _, r := range rows {
		m.Observe(r)
		tb.Append(r)
	}
	return m, tb
}

func randomRows(d, n int, seed uint64) []words.Word {
	src := rng.New(seed)
	rows := make([]words.Word, n)
	for i := range rows {
		w := make(words.Word, d)
		for j := range w {
			w[j] = uint16(src.Intn(2))
		}
		rows[i] = w
	}
	return rows
}

func TestMetaSummaryMemberQueryIsDirect(t *testing.T) {
	const d = 8
	m, tb := buildMeta(t, d, 0.25, randomRows(d, 300, 1))
	// Size-2 subsets are members (low = floor(4-2) = 2).
	c := words.MustColumnSet(d, 1, 5)
	ans, err := m.Query(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Distance != 0 || !ans.Neighbor.Equal(c) || ans.Distortion != 1 {
		t.Fatalf("member query rounded: %+v", ans)
	}
	truth := float64(freq.FromTable(tb, c).Support())
	// KMV with k=64 is exact below saturation (F0 <= 4 here).
	if ans.Estimate != truth {
		t.Fatalf("estimate %v != truth %v", ans.Estimate, truth)
	}
}

func TestMetaSummaryBandQueryRounds(t *testing.T) {
	const d = 8
	m, tb := buildMeta(t, d, 0.25, randomRows(d, 500, 2))
	c := words.MustColumnSet(d, 0, 1, 2, 3) // size 4: inside the band (2,6)
	ans, err := m.Query(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Distance == 0 {
		t.Fatal("band query must round")
	}
	truth := float64(freq.FromTable(tb, c).Support())
	ratio := ans.Estimate / truth
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > ans.Distortion*1.2 {
		t.Fatalf("ratio %v exceeds distortion %v", ratio, ans.Distortion)
	}
}

func TestMetaSummaryCounts(t *testing.T) {
	const d = 8
	m, _ := buildMeta(t, d, 0.25, randomRows(d, 100, 3))
	n, _ := NewNet(d, 0.25)
	want, _ := n.MemberCount()
	if m.NumSketches() != want {
		t.Fatalf("NumSketches = %d, want %d", m.NumSketches(), want)
	}
	if m.Rows() != 100 {
		t.Fatalf("Rows = %d", m.Rows())
	}
	if m.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestMetaSummaryDimensionMismatch(t *testing.T) {
	m, _ := buildMeta(t, 8, 0.25, randomRows(8, 10, 4))
	if _, err := m.Query(words.MustColumnSet(9, 0), 0); err == nil {
		t.Fatal("dimension mismatch must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("observe with wrong length must panic")
		}
	}()
	m.Observe(make(words.Word, 9))
}

func TestMarshalUnmarshalSketchesRoundTrip(t *testing.T) {
	const d = 8
	rows := randomRows(d, 400, 5)
	m, _ := buildMeta(t, d, 0.25, rows)
	msg, err := m.MarshalSketches()
	if err != nil {
		t.Fatal(err)
	}
	// Bob rebuilds an empty summary with the same shape and decodes.
	n, _ := NewNet(d, 0.25)
	bob, err := NewMetaSummary(n, kmvFactory(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.UnmarshalSketches(msg); err != nil {
		t.Fatal(err)
	}
	for _, cols := range [][]int{{0}, {0, 1, 2, 3}, {2, 4, 6}} {
		c := words.MustColumnSet(d, cols...)
		a, err1 := m.Query(c, 0)
		b, err2 := bob.Query(c, 0)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a.Estimate != b.Estimate {
			t.Fatalf("decoded estimate %v != original %v on %v", b.Estimate, a.Estimate, cols)
		}
	}
}

func TestUnmarshalSketchesRejectsGarbage(t *testing.T) {
	n, _ := NewNet(8, 0.25)
	m, _ := NewMetaSummary(n, kmvFactory(7))
	if err := m.UnmarshalSketches([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated message must error")
	}
	good, _ := m.MarshalSketches()
	if err := m.UnmarshalSketches(append(good, 0xff)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes must error, got %v", err)
	}
}

func TestMetaSummaryEmptyNetRejected(t *testing.T) {
	// d=31 exceeds the enumeration limit.
	n := &Net{d: 31, alpha: 0.2, low: 5, high: 26}
	if _, err := NewMetaSummary(n, kmvFactory(1)); err == nil {
		t.Fatal("oversized dimension must error")
	}
}
