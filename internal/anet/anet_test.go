package anet

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/words"
)

func TestNewNetValidation(t *testing.T) {
	for _, tc := range []struct {
		d     int
		alpha float64
	}{{0, 0.2}, {5, 0}, {5, 0.5}, {5, -0.1}, {5, 0.7}} {
		if _, err := NewNet(tc.d, tc.alpha); err == nil {
			t.Fatalf("NewNet(%d, %v) must error", tc.d, tc.alpha)
		}
	}
}

func TestNetBoundaries(t *testing.T) {
	// d=12, alpha=0.25: low = floor(6-3) = 3, high = ceil(6+3) = 9.
	n, err := NewNet(12, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if n.Low() != 3 || n.High() != 9 {
		t.Fatalf("low=%d high=%d", n.Low(), n.High())
	}
	for _, tc := range []struct {
		size int
		want bool
	}{{0, true}, {3, true}, {4, false}, {6, false}, {8, false}, {9, true}, {12, true}} {
		if got := n.ContainsSize(tc.size); got != tc.want {
			t.Errorf("ContainsSize(%d) = %v, want %v", tc.size, got, tc.want)
		}
	}
}

// TestNeighborProperties is the core Definition 6.1 invariant: the
// neighbour is a net member at symmetric difference at most ⌈αd⌉.
func TestNeighborProperties(t *testing.T) {
	f := func(seed uint64, dRaw, aRaw uint8) bool {
		d := 4 + int(dRaw%20)
		alpha := 0.05 + float64(aRaw%40)/100.0 // 0.05 .. 0.44
		n, err := NewNet(d, alpha)
		if err != nil {
			return false
		}
		src := rng.New(seed)
		size := src.Intn(d + 1)
		c := words.MustColumnSet(d, src.Subset(d, size)...)
		nb, dist := n.Neighbor(c)
		if !n.Contains(nb) {
			return false
		}
		if c.SymDiffSize(nb) != dist {
			return false
		}
		ceilAD := int(math.Ceil(alpha * float64(d)))
		if dist > ceilAD {
			return false
		}
		if n.Contains(c) {
			return dist == 0 && nb.Equal(c)
		}
		return dist > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborDeterministic(t *testing.T) {
	n, _ := NewNet(10, 0.3)
	c := words.MustColumnSet(10, 1, 3, 5, 7)
	a, _ := n.Neighbor(c)
	b, _ := n.Neighbor(c)
	if !a.Equal(b) {
		t.Fatal("neighbour must be deterministic")
	}
	// Shrinking drops the largest columns.
	if a.Contains(7) && a.Len() < c.Len() {
		t.Fatalf("shrink should drop largest columns first: %v", a)
	}
}

func TestMaxNeighborDistance(t *testing.T) {
	n, _ := NewNet(12, 0.25) // band (3, 9): sizes 4..8
	// Worst case is size 6: min(6-3, 9-6) = 3.
	if got := n.MaxNeighborDistance(); got != 3 {
		t.Fatalf("MaxNeighborDistance = %d, want 3", got)
	}
}

func TestSizeExactMatchesEnumeration(t *testing.T) {
	for _, alpha := range []float64{0.1, 0.25, 0.4} {
		n, _ := NewNet(10, alpha)
		count := 0
		if err := n.EnumerateMasks(func(uint64) bool { count++; return true }); err != nil {
			t.Fatal(err)
		}
		if n.SizeExact().Cmp(big.NewInt(int64(count))) != 0 {
			t.Fatalf("alpha=%v: SizeExact %v != enumerated %d", alpha, n.SizeExact(), count)
		}
		mc, err := n.MemberCount()
		if err != nil || mc != count {
			t.Fatalf("MemberCount %d, %v", mc, err)
		}
	}
}

// TestLemma62Bound: |N| <= 2^{H(1/2-alpha)d + 1}.
func TestLemma62Bound(t *testing.T) {
	f := func(dRaw, aRaw uint8) bool {
		d := 2 + int(dRaw%28)
		alpha := 0.02 + float64(aRaw%46)/100.0
		n, err := NewNet(d, alpha)
		if err != nil {
			return false
		}
		sf := new(big.Float).SetInt(n.SizeExact())
		sv, _ := sf.Float64()
		return math.Log2(sv) <= n.LogSizeBound()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeSpaceShrinksWithAlpha(t *testing.T) {
	prev := 1.1
	for _, alpha := range []float64{0.05, 0.15, 0.25, 0.35, 0.45} {
		n, _ := NewNet(20, alpha)
		rs := n.RelativeSpace()
		if rs <= 0 || rs > 1 {
			t.Fatalf("relative space %v out of range", rs)
		}
		if rs >= prev {
			t.Fatalf("relative space must shrink as alpha grows: %v >= %v", rs, prev)
		}
		prev = rs
	}
}

func TestDistortionValues(t *testing.T) {
	cases := []struct {
		p    float64
		dist int
		want float64
	}{
		{0, 3, 8},    // F0: 2^dist
		{1, 5, 1},    // F1: no distortion
		{2, 3, 8},    // p>1: 2^{dist(p-1)}
		{1.5, 4, 4},  // 2^{4*0.5}
		{0.5, 4, 4},  // p<1: 2^{dist(1-p)}
		{0.75, 8, 4}, // 2^{8*0.25}
		{2, 0, 1},
	}
	for _, c := range cases {
		if got := Distortion(c.p, c.dist); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Distortion(%v, %d) = %v, want %v", c.p, c.dist, got, c.want)
		}
	}
}

func TestDistortionApproaches1NearP1(t *testing.T) {
	// The paper notes distortion → 1 as p → 1 from either side.
	for _, p := range []float64{0.9, 0.99, 1.01, 1.1} {
		d1 := Distortion(p, 5)
		if d1 < 1 {
			t.Fatalf("distortion below 1 at p=%v", p)
		}
		closer := Distortion(1+(p-1)/10, 5)
		if closer > d1 {
			t.Fatalf("distortion must shrink toward p=1: %v > %v", closer, d1)
		}
	}
}

func TestDistortionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Distortion(2, -1)
}

func TestNeighborModeDirections(t *testing.T) {
	n, _ := NewNet(12, 0.25)                    // band (3, 9)
	c := words.MustColumnSet(12, 0, 1, 2, 3, 4) // size 5
	down, dd := n.NeighborMode(c, RoundDown)
	up, du := n.NeighborMode(c, RoundUp)
	near, dn := n.NeighborMode(c, RoundNearest)
	if down.Len() != 3 || dd != 2 {
		t.Fatalf("down: %v dist %d", down, dd)
	}
	if up.Len() != 9 || du != 4 {
		t.Fatalf("up: %v dist %d", up, du)
	}
	// Size 5 is nearer the lower boundary: nearest == down.
	if !near.Equal(down) || dn != dd {
		t.Fatalf("nearest: %v dist %d", near, dn)
	}
	// Down keeps a subset of C; up keeps a superset.
	if !down.IsSubsetOf(c) {
		t.Fatal("shrink must produce a subset")
	}
	if !c.IsSubsetOf(up) {
		t.Fatal("grow must produce a superset")
	}
	// Members are fixed points in every mode.
	member := words.MustColumnSet(12, 0, 1)
	for _, mode := range []RoundingMode{RoundNearest, RoundDown, RoundUp} {
		nb, dist := n.NeighborMode(member, mode)
		if dist != 0 || !nb.Equal(member) {
			t.Fatalf("mode %v moved a member", mode)
		}
	}
}

func TestNeighborModeAllModesLandInNet(t *testing.T) {
	f := func(seed uint64, dRaw, aRaw, mRaw uint8) bool {
		d := 4 + int(dRaw%16)
		alpha := 0.05 + float64(aRaw%40)/100.0
		mode := RoundingMode(mRaw % 3)
		n, err := NewNet(d, alpha)
		if err != nil {
			return false
		}
		src := rng.New(seed)
		c := words.MustColumnSet(d, src.Subset(d, src.Intn(d+1))...)
		nb, dist := n.NeighborMode(c, mode)
		return n.Contains(nb) && c.SymDiffSize(nb) == dist
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundingModeString(t *testing.T) {
	if RoundNearest.String() != "nearest" || RoundDown.String() != "down" || RoundUp.String() != "up" {
		t.Fatal("mode names")
	}
}

func TestDistortionQ(t *testing.T) {
	// Binary reduces to Distortion.
	if DistortionQ(0, 3, 2) != Distortion(0, 3) {
		t.Fatal("q=2 must match binary")
	}
	// Q-ary F0: q^dist.
	if got := DistortionQ(0, 2, 5); math.Abs(got-25) > 1e-9 {
		t.Fatalf("DistortionQ(0,2,5) = %v, want 25", got)
	}
	// p=1 is always distortion-free.
	if DistortionQ(1, 7, 9) != 1 {
		t.Fatal("p=1 must be 1")
	}
	// p=2 over [4]: 4^{dist}.
	if got := DistortionQ(2, 3, 4); math.Abs(got-64) > 1e-9 {
		t.Fatalf("DistortionQ(2,3,4) = %v, want 64", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("q < 2 must panic")
		}
	}()
	DistortionQ(0, 1, 1)
}

func TestEnumerateMasksAscending(t *testing.T) {
	n, _ := NewNet(8, 0.25)
	prev := int64(-1)
	if err := n.EnumerateMasks(func(m uint64) bool {
		if int64(m) <= prev {
			t.Fatalf("masks not ascending: %d after %d", m, prev)
		}
		prev = int64(m)
		return true
	}); err != nil {
		t.Fatal(err)
	}
}
