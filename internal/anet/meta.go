package anet

import (
	"encoding"
	"fmt"
	"sort"

	"repro/internal/hashing"
	"repro/internal/words"
)

// Estimator is the sketch contract Algorithm 1 requires: a
// β-approximate estimator of one projected frequency statistic fed
// with pattern fingerprints. KMV/HLL/BJKST satisfy it for F0 and the
// stable and CountSketch-based adapters satisfy it for F_p.
type Estimator interface {
	Add(item uint64)
	Estimate() float64
	SizeBytes() int
}

// BatchEstimator is the optional batched entry point of the key
// pipeline: AddBatch(items) must be equivalent to calling Add per item
// in order. Estimators that implement it consume a whole batch's
// precomputed fingerprints in one call; the others fall back to the
// per-item loop with identical resulting state.
type BatchEstimator interface {
	AddBatch(items []uint64)
}

// Factory builds a fresh Estimator for the net member with the given
// subset ID (its bitmask); implementations must derive per-subset
// seeds from the ID so sketches are independent.
type Factory func(subsetID uint64) Estimator

// MetaSummary is Algorithm 1 (ProjectedFreq): it generates the α-net
// N, keeps one sketch per member U ∈ N updated with the projection of
// every observed row onto U, and answers a query C from the sketch of
// an α-neighbour C′, inheriting the Lemma 6.4 rounding distortion.
type MetaSummary struct {
	net     *Net
	factory Factory
	masks   []uint64
	subsets []words.ColumnSet
	sk      []Estimator
	bufs    []words.Word
	keyBuf  []byte
	fps     []uint64 // reusable fingerprint arena for ObserveBatch
	rows    int64
}

// NewMetaSummary materializes the net (d ≤ 30 is required for
// enumeration; the experiments use d ≤ 16) and one sketch per member.
func NewMetaSummary(net *Net, factory Factory) (*MetaSummary, error) {
	m := &MetaSummary{net: net, factory: factory}
	err := net.EnumerateMasks(func(mask uint64) bool {
		m.masks = append(m.masks, mask)
		cs := maskColumns(mask, net.Dim())
		m.subsets = append(m.subsets, cs)
		m.sk = append(m.sk, factory(mask))
		m.bufs = append(m.bufs, make(words.Word, cs.Len()))
		return true
	})
	if err != nil {
		return nil, err
	}
	if len(m.masks) == 0 {
		return nil, fmt.Errorf("anet: net has no members")
	}
	return m, nil
}

// Net returns the underlying α-net.
func (m *MetaSummary) Net() *Net { return m.net }

// NumSketches returns |N|, the count of maintained sketches.
func (m *MetaSummary) NumSketches() int { return len(m.sk) }

// Rows returns the number of rows observed.
func (m *MetaSummary) Rows() int64 { return m.rows }

// Observe feeds one row into every member sketch. This is the
// O(|N|) per-row cost that Theorem 6.5 trades against query-time
// generality; the paper's claim is about space, not update time.
func (m *MetaSummary) Observe(w words.Word) {
	if len(w) != m.net.Dim() {
		panic(fmt.Sprintf("anet: row length %d != dimension %d", len(w), m.net.Dim()))
	}
	m.rows++
	for i, cs := range m.subsets {
		buf := m.bufs[i]
		w.ProjectInto(cs, buf)
		m.keyBuf = words.AppendKey(m.keyBuf[:0], buf, words.FullColumnSet(cs.Len()))
		m.sk[i].Add(hashing.Fingerprint64(m.keyBuf))
	}
}

// ObserveBatch feeds every row of b into every member sketch through
// the batched key pipeline, member-major: for each net member the
// whole batch is projected into one flat key arena
// (words.AppendBatchKeys), fingerprinted in one pass
// (hashing.AppendFingerprints64), and handed to the sketch — via
// AddBatch when the estimator implements BatchEstimator, else one Add
// per fingerprint. Both arenas are owned by the summary and reused
// across members and batches. Sketch states end up identical to
// row-at-a-time Observe: every member sees the same fingerprints in
// the same order.
func (m *MetaSummary) ObserveBatch(b *words.Batch) {
	if b.Dim() != m.net.Dim() {
		panic(fmt.Sprintf("anet: batch dimension %d != dimension %d", b.Dim(), m.net.Dim()))
	}
	n := b.Len()
	if n == 0 {
		return
	}
	m.rows += int64(n)
	for i, cs := range m.subsets {
		m.keyBuf = words.AppendBatchKeys(m.keyBuf[:0], b, cs)
		m.fps = hashing.AppendFingerprints64(m.fps[:0], m.keyBuf, n, 2*cs.Len())
		if be, ok := m.sk[i].(BatchEstimator); ok {
			be.AddBatch(m.fps)
			continue
		}
		sk := m.sk[i]
		for _, fp := range m.fps {
			sk.Add(fp)
		}
	}
}

// Answer is the result of a meta-summary query.
type Answer struct {
	// Estimate is the sketch estimate at the neighbour.
	Estimate float64
	// Neighbor is the net member the query was rounded to.
	Neighbor words.ColumnSet
	// Distance is |C Δ C′|; 0 means the query was answered directly.
	Distance int
	// Distortion is the Lemma 6.4 bound 2^{Distance·c(p)} for the
	// problem's moment order, folded in by the caller via
	// anet.Distortion; stored here for reporting.
	Distortion float64
}

// Query answers the projection query C for a problem with moment
// order p (p = 0 for F0). The estimate is the raw neighbour-sketch
// value; the true answer lies within Distortion·β of it per
// Theorem 6.5.
func (m *MetaSummary) Query(c words.ColumnSet, p float64) (Answer, error) {
	return m.QueryMode(c, p, RoundNearest)
}

// QueryMode is Query with an explicit neighbour rounding mode (the
// DESIGN.md §5 ablation).
func (m *MetaSummary) QueryMode(c words.ColumnSet, p float64, mode RoundingMode) (Answer, error) {
	if c.Dim() != m.net.Dim() {
		return Answer{}, fmt.Errorf("anet: query dimension %d != net dimension %d", c.Dim(), m.net.Dim())
	}
	nb, dist := m.net.NeighborMode(c, mode)
	idx := m.indexOf(nb.Mask())
	if idx < 0 {
		return Answer{}, fmt.Errorf("anet: neighbour %v not materialized", nb)
	}
	return Answer{
		Estimate:   m.sk[idx].Estimate(),
		Neighbor:   nb,
		Distance:   dist,
		Distortion: Distortion(p, dist),
	}, nil
}

// Mergeable is implemented by estimators that support distributed
// ingestion; the concrete sketches in internal/sketch all do, each
// with a typed Merge — this adapter dispatches on the dynamic type.
type Mergeable interface {
	MergeEstimator(other Estimator) error
}

// Merge folds another meta-summary built over the same net and
// factory into m, enabling shard-and-merge ingestion of partitioned
// streams. Every member sketch must support merging.
func (m *MetaSummary) Merge(o *MetaSummary) error {
	if len(m.sk) != len(o.sk) {
		return fmt.Errorf("anet: merging nets of different size (%d vs %d)", len(m.sk), len(o.sk))
	}
	for i := range m.masks {
		if m.masks[i] != o.masks[i] {
			return fmt.Errorf("anet: member %d mask mismatch", i)
		}
	}
	for i, s := range m.sk {
		mg, ok := s.(Mergeable)
		if !ok {
			return fmt.Errorf("anet: sketch %d does not merge", i)
		}
		if err := mg.MergeEstimator(o.sk[i]); err != nil {
			return fmt.Errorf("anet: sketch %d: %w", i, err)
		}
	}
	m.rows += o.rows
	return nil
}

func (m *MetaSummary) indexOf(mask uint64) int {
	i := sort.Search(len(m.masks), func(i int) bool { return m.masks[i] >= mask })
	if i < len(m.masks) && m.masks[i] == mask {
		return i
	}
	return -1
}

// SizeBytes returns the total serialized size of all member sketches:
// the space Theorem 6.5 accounts.
func (m *MetaSummary) SizeBytes() int {
	total := 0
	for _, s := range m.sk {
		total += s.SizeBytes()
	}
	return total
}

// MarshalSketches serializes every member sketch (in mask order) when
// the sketches implement encoding.BinaryMarshaler; the communication
// experiments use this as Alice's message body.
func (m *MetaSummary) MarshalSketches() ([]byte, error) {
	var out []byte
	for i, s := range m.sk {
		bm, ok := s.(encoding.BinaryMarshaler)
		if !ok {
			return nil, fmt.Errorf("anet: sketch %d does not serialize", i)
		}
		b, err := bm.MarshalBinary()
		if err != nil {
			return nil, err
		}
		var hdr [4]byte
		hdr[0] = byte(len(b))
		hdr[1] = byte(len(b) >> 8)
		hdr[2] = byte(len(b) >> 16)
		hdr[3] = byte(len(b) >> 24)
		out = append(out, hdr[:]...)
		out = append(out, b...)
	}
	return out, nil
}

// UnmarshalSketches restores member sketch state from a
// MarshalSketches message; this is Bob's decoding step in the
// communication experiments and the summary layer's net decoding.
//
// The receiver must have been freshly built with the same net and
// factory (no rows observed). When the member sketches support
// merging (Mergeable), each message sketch is decoded into a new
// factory-made instance and folded into the corresponding empty
// member, which both reproduces the serialized state exactly and
// rejects message sketches whose parameters contradict what the
// factory derives for that member — the validation the summary
// layer's wire decoding relies on. Members without merge support are
// overwritten in place, unvalidated.
func (m *MetaSummary) UnmarshalSketches(data []byte) error {
	off := 0
	for i, s := range m.sk {
		target := s
		mg, validated := s.(Mergeable)
		if validated {
			target = m.factory(m.masks[i])
		}
		bu, ok := target.(encoding.BinaryUnmarshaler)
		if !ok {
			return fmt.Errorf("anet: sketch %d does not deserialize", i)
		}
		if off+4 > len(data) {
			return fmt.Errorf("anet: truncated sketch message at sketch %d", i)
		}
		n := int(data[off]) | int(data[off+1])<<8 | int(data[off+2])<<16 | int(data[off+3])<<24
		off += 4
		if n < 0 || off+n > len(data) {
			return fmt.Errorf("anet: truncated sketch body at sketch %d", i)
		}
		if err := bu.UnmarshalBinary(data[off : off+n]); err != nil {
			return fmt.Errorf("anet: sketch %d: %w", i, err)
		}
		if validated {
			if err := mg.MergeEstimator(target); err != nil {
				return fmt.Errorf("anet: sketch %d contradicts its factory parameters: %w", i, err)
			}
		}
		off += n
	}
	if off != len(data) {
		return fmt.Errorf("anet: %d trailing bytes in sketch message", len(data)-off)
	}
	return nil
}
