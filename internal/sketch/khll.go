package sketch

import (
	"fmt"
	"sort"

	"repro/internal/hashing"
)

// KHLL is the KHyperLogLog sketch of Chia et al. (IEEE S&P 2019),
// the tool the paper's privacy/linkability motivation (Section 1)
// cites: a KMV sample of k hashed values, each paired with a small
// HyperLogLog counting the distinct ids observed with that value.
// From it one estimates both the number of distinct values and the
// distribution of ids-per-value — in the projected-frequency setting,
// how close projected patterns come to uniquely identifying rows.
//
// KHLL answers the "target dimensions known in advance" regime of the
// linkability problem; for dimensions revealed after the data, the
// paper's Section 4 lower bound applies and the α-net summary is the
// tool instead.
type KHLL struct {
	k         int
	precision int
	seed      uint64
	h         hashing.Mixer
	entries   map[uint64]*HLL // value hash → id counter, k smallest kept
	maxHash   uint64          // current k-th smallest (threshold), valid when full
}

// NewKHLL returns a KHLL retaining k values with 2^precision-register
// HLLs.
func NewKHLL(k, precision int, seed uint64) *KHLL {
	if k < 2 {
		panic("sketch: KHLL requires k >= 2")
	}
	if precision < 4 || precision > 16 {
		panic("sketch: KHLL precision outside [4, 16]")
	}
	return &KHLL{
		k:         k,
		precision: precision,
		seed:      seed,
		h:         hashing.NewMixer(seed),
		entries:   make(map[uint64]*HLL, k),
	}
}

// K returns the value-retention parameter.
func (s *KHLL) K() int { return s.k }

// Add observes one (value, id) pair — in the linkability use, value is
// the fingerprint of a projected pattern and id identifies the row or
// user it belongs to.
func (s *KHLL) Add(value, id uint64) {
	hv := s.h.Hash(value)
	if hll, ok := s.entries[hv]; ok {
		hll.Add(id)
		return
	}
	if len(s.entries) >= s.k {
		if hv >= s.maxHash {
			return
		}
		delete(s.entries, s.maxHash)
	}
	hll := NewHLL(s.precision, s.seed^0x9e3779b97f4a7c15)
	hll.Add(id)
	s.entries[hv] = hll
	s.refreshMax()
}

func (s *KHLL) refreshMax() {
	if len(s.entries) < s.k {
		s.maxHash = ^uint64(0)
		return
	}
	max := uint64(0)
	for hv := range s.entries {
		if hv > max {
			max = hv
		}
	}
	s.maxHash = max
}

// DistinctValues estimates the number of distinct values observed
// (the KMV estimator over the retained hashes).
func (s *KHLL) DistinctValues() float64 {
	n := len(s.entries)
	if n < s.k {
		return float64(n)
	}
	u := (float64(s.maxHash) + 1) / (1 << 63) / 2
	return float64(s.k-1) / u
}

// UniquenessDistribution returns, for each requested ids-per-value
// threshold t, the estimated fraction of values carrying at most t
// distinct ids. The retained values are a uniform sample of the
// distinct values, so sample fractions estimate population fractions
// (the core KHLL observation).
func (s *KHLL) UniquenessDistribution(thresholds []int) []float64 {
	out := make([]float64, len(thresholds))
	if len(s.entries) == 0 {
		return out
	}
	counts := make([]float64, 0, len(s.entries))
	for _, hll := range s.entries {
		counts = append(counts, hll.Estimate())
	}
	sort.Float64s(counts)
	for i, t := range thresholds {
		idx := sort.SearchFloat64s(counts, float64(t)+0.5)
		out[i] = float64(idx) / float64(len(counts))
	}
	return out
}

// HighlyIdentifying estimates the fraction of values seen with at
// most maxIDs distinct ids — the re-identification risk measure.
func (s *KHLL) HighlyIdentifying(maxIDs int) float64 {
	return s.UniquenessDistribution([]int{maxIDs})[0]
}

// SizeBytes reports the serialized footprint: 8 bytes per retained
// hash plus one HLL register block each.
func (s *KHLL) SizeBytes() int {
	total := 1 + 4 + 4 + 8
	for _, hll := range s.entries {
		total += 8 + hll.SizeBytes()
	}
	return total
}

// Merge folds another KHLL built with identical parameters into s.
func (s *KHLL) Merge(o *KHLL) error {
	if o.k != s.k || o.precision != s.precision || o.seed != s.seed {
		return fmt.Errorf("%w: KHLL k/precision/seed mismatch", ErrIncompatible)
	}
	for hv, ohll := range o.entries {
		if hll, ok := s.entries[hv]; ok {
			if err := hll.Merge(ohll); err != nil {
				return err
			}
			continue
		}
		cp := NewHLL(s.precision, s.seed^0x9e3779b97f4a7c15)
		if err := cp.Merge(ohll); err != nil {
			return err
		}
		s.entries[hv] = cp
	}
	// Trim back to the k smallest hashes.
	if len(s.entries) > s.k {
		hashes := make([]uint64, 0, len(s.entries))
		for hv := range s.entries {
			hashes = append(hashes, hv)
		}
		sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
		for _, hv := range hashes[s.k:] {
			delete(s.entries, hv)
		}
	}
	s.refreshMax()
	return nil
}
