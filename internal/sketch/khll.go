package sketch

import (
	"fmt"
	"sort"

	"repro/internal/hashing"
	"repro/internal/wire"
)

// KHLL is the KHyperLogLog sketch of Chia et al. (IEEE S&P 2019),
// the tool the paper's privacy/linkability motivation (Section 1)
// cites: a KMV sample of k hashed values, each paired with a small
// HyperLogLog counting the distinct ids observed with that value.
// From it one estimates both the number of distinct values and the
// distribution of ids-per-value — in the projected-frequency setting,
// how close projected patterns come to uniquely identifying rows.
//
// KHLL answers the "target dimensions known in advance" regime of the
// linkability problem; for dimensions revealed after the data, the
// paper's Section 4 lower bound applies and the α-net summary is the
// tool instead.
type KHLL struct {
	k         int
	precision int
	seed      uint64
	h         hashing.Mixer
	entries   map[uint64]*HLL // value hash → id counter, k smallest kept
	maxHash   uint64          // current k-th smallest (threshold), valid when full
}

// NewKHLL returns a KHLL retaining k values with 2^precision-register
// HLLs.
func NewKHLL(k, precision int, seed uint64) *KHLL {
	if k < 2 {
		panic("sketch: KHLL requires k >= 2")
	}
	if precision < 4 || precision > 16 {
		panic("sketch: KHLL precision outside [4, 16]")
	}
	return &KHLL{
		k:         k,
		precision: precision,
		seed:      seed,
		h:         hashing.NewMixer(seed),
		entries:   make(map[uint64]*HLL, mapHint(k)),
	}
}

// K returns the value-retention parameter.
func (s *KHLL) K() int { return s.k }

// Add observes one (value, id) pair — in the linkability use, value is
// the fingerprint of a projected pattern and id identifies the row or
// user it belongs to.
func (s *KHLL) Add(value, id uint64) {
	hv := s.h.Hash(value)
	if hll, ok := s.entries[hv]; ok {
		hll.Add(id)
		return
	}
	if len(s.entries) >= s.k {
		if hv >= s.maxHash {
			return
		}
		delete(s.entries, s.maxHash)
	}
	hll := NewHLL(s.precision, s.seed^0x9e3779b97f4a7c15)
	hll.Add(id)
	s.entries[hv] = hll
	s.refreshMax()
}

// AddBatch observes values[i] with id baseID+i for every i, equivalent
// to calling Add(values[i], baseID+i) in order — the id assignment the
// registered summary's row counter produces for a contiguous batch.
func (s *KHLL) AddBatch(values []uint64, baseID uint64) {
	for i, v := range values {
		s.Add(v, baseID+uint64(i))
	}
}

func (s *KHLL) refreshMax() {
	if len(s.entries) < s.k {
		s.maxHash = ^uint64(0)
		return
	}
	max := uint64(0)
	for hv := range s.entries {
		if hv > max {
			max = hv
		}
	}
	s.maxHash = max
}

// DistinctValues estimates the number of distinct values observed
// (the KMV estimator over the retained hashes).
func (s *KHLL) DistinctValues() float64 {
	n := len(s.entries)
	if n < s.k {
		return float64(n)
	}
	u := (float64(s.maxHash) + 1) / (1 << 63) / 2
	return float64(s.k-1) / u
}

// UniquenessDistribution returns, for each requested ids-per-value
// threshold t, the estimated fraction of values carrying at most t
// distinct ids. The retained values are a uniform sample of the
// distinct values, so sample fractions estimate population fractions
// (the core KHLL observation).
func (s *KHLL) UniquenessDistribution(thresholds []int) []float64 {
	out := make([]float64, len(thresholds))
	if len(s.entries) == 0 {
		return out
	}
	counts := make([]float64, 0, len(s.entries))
	for _, hll := range s.entries {
		counts = append(counts, hll.Estimate())
	}
	sort.Float64s(counts)
	for i, t := range thresholds {
		idx := sort.SearchFloat64s(counts, float64(t)+0.5)
		out[i] = float64(idx) / float64(len(counts))
	}
	return out
}

// HighlyIdentifying estimates the fraction of values seen with at
// most maxIDs distinct ids — the re-identification risk measure.
func (s *KHLL) HighlyIdentifying(maxIDs int) float64 {
	return s.UniquenessDistribution([]int{maxIDs})[0]
}

// SizeBytes reports the serialized footprint: 8 bytes per retained
// hash plus one HLL register block each.
func (s *KHLL) SizeBytes() int {
	total := 1 + 4 + 4 + 8
	for _, hll := range s.entries {
		total += 8 + hll.SizeBytes()
	}
	return total
}

// MarshalBinary encodes the sketch: the retained value hashes in
// ascending order, each followed by its id-counting HLL block.
func (s *KHLL) MarshalBinary() ([]byte, error) {
	w := wire.NewWriter(s.SizeBytes() + 4)
	w.U8(tagKHLL)
	w.U32(uint32(s.k))
	w.U8(uint8(s.precision))
	w.U64(s.seed)
	w.U32(uint32(len(s.entries)))
	hashes := make([]uint64, 0, len(s.entries))
	for hv := range s.entries {
		hashes = append(hashes, hv)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	for _, hv := range hashes {
		b, err := s.entries[hv].MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.U64(hv)
		w.Block(b)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a sketch produced by MarshalBinary,
// replacing the receiver's state. Allocation is bounded by the stored
// entry count, which is validated against the remaining input.
func (s *KHLL) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data, ErrCorrupt)
	if r.U8() != tagKHLL {
		return fmt.Errorf("%w: not a KHLL sketch", ErrCorrupt)
	}
	k := int(r.U32())
	precision := int(r.U8())
	seed := r.U64()
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	// Each entry costs at least its hash and block prefix (12 bytes).
	if k < 2 || precision < 4 || precision > 16 || n > k || 12*n > r.Remaining() {
		return fmt.Errorf("%w: KHLL header k=%d precision=%d n=%d", ErrCorrupt, k, precision, n)
	}
	tmp := &KHLL{
		k:         k,
		precision: precision,
		seed:      seed,
		h:         hashing.NewMixer(seed),
		entries:   make(map[uint64]*HLL, n),
	}
	prev := uint64(0)
	for i := 0; i < n; i++ {
		hv := r.U64()
		blob := r.Block()
		if err := r.Err(); err != nil {
			return err
		}
		if i > 0 && hv <= prev {
			return fmt.Errorf("%w: KHLL hashes out of order", ErrCorrupt)
		}
		prev = hv
		hll := &HLL{}
		if err := hll.UnmarshalBinary(blob); err != nil {
			return err
		}
		if hll.Precision() != precision {
			return fmt.Errorf("%w: KHLL member precision %d != %d", ErrCorrupt, hll.Precision(), precision)
		}
		tmp.entries[hv] = hll
	}
	if err := r.Done(); err != nil {
		return err
	}
	tmp.refreshMax()
	*s = *tmp
	return nil
}

// Merge folds another KHLL built with identical parameters into s.
func (s *KHLL) Merge(o *KHLL) error {
	if o.k != s.k || o.precision != s.precision || o.seed != s.seed {
		return fmt.Errorf("%w: KHLL k/precision/seed mismatch", ErrIncompatible)
	}
	for hv, ohll := range o.entries {
		if hll, ok := s.entries[hv]; ok {
			if err := hll.Merge(ohll); err != nil {
				return err
			}
			continue
		}
		cp := NewHLL(s.precision, s.seed^0x9e3779b97f4a7c15)
		if err := cp.Merge(ohll); err != nil {
			return err
		}
		s.entries[hv] = cp
	}
	// Trim back to the k smallest hashes.
	if len(s.entries) > s.k {
		hashes := make([]uint64, 0, len(s.entries))
		for hv := range s.entries {
			hashes = append(hashes, hv)
		}
		sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
		for _, hv := range hashes[s.k:] {
			delete(s.entries, hv)
		}
	}
	s.refreshMax()
	return nil
}
