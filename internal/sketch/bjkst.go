package sketch

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/hashing"
	"repro/internal/wire"
)

// BJKST is the Bar-Yossef–Jayram–Kumar–Sivakumar–Trevisan distinct
// counter: it keeps the set B of (hashed) items whose hash has at
// least z trailing zeros, doubling z whenever |B| exceeds the bucket
// budget, and estimates F0 = |B| · 2^z. With budget = O(1/ε²) the
// estimate is (1±ε) with constant probability. Included as the third
// point in the F0-sketch ablation of DESIGN.md §5.
type BJKST struct {
	budget int
	seed   uint64
	h      hashing.Mixer
	z      uint8
	set    map[uint64]struct{}
}

// NewBJKST returns a BJKST sketch with the given bucket budget.
func NewBJKST(budget int, seed uint64) *BJKST {
	if budget < 8 {
		panic("sketch: BJKST budget must be at least 8")
	}
	return &BJKST{
		budget: budget,
		seed:   seed,
		h:      hashing.NewMixer(seed),
		set:    make(map[uint64]struct{}, mapHint(budget)),
	}
}

// BJKSTForEpsilon sizes the budget as 24/ε² (constant from the
// standard analysis, rounded generously).
func BJKSTForEpsilon(eps float64, seed uint64) *BJKST {
	if !(eps > 0 && eps < 1) {
		panic("sketch: epsilon outside (0,1)")
	}
	return NewBJKST(int(24/(eps*eps))+8, seed)
}

// Budget returns the bucket budget.
func (s *BJKST) Budget() int { return s.budget }

// Seed returns the hash seed.
func (s *BJKST) Seed() uint64 { return s.seed }

// Add observes an item.
func (s *BJKST) Add(item uint64) {
	s.addHash(s.h.Hash(item))
}

// AddBatch observes every item of items in order, equivalent to
// calling Add per item.
func (s *BJKST) AddBatch(items []uint64) {
	for _, item := range items {
		s.addHash(s.h.Hash(item))
	}
}

func (s *BJKST) addHash(hv uint64) {
	if uint8(bits.TrailingZeros64(hv|1<<63)) < s.z {
		return
	}
	s.set[hv] = struct{}{}
	for len(s.set) > s.budget {
		s.z++
		for v := range s.set {
			if uint8(bits.TrailingZeros64(v|1<<63)) < s.z {
				delete(s.set, v)
			}
		}
	}
}

// Estimate returns the approximate number of distinct items.
func (s *BJKST) Estimate() float64 {
	return float64(len(s.set)) * math.Ldexp(1, int(s.z))
}

// Merge unions another BJKST into s.
func (s *BJKST) Merge(o *BJKST) error {
	if o.budget != s.budget || o.seed != s.seed {
		return fmt.Errorf("%w: BJKST budget/seed mismatch", ErrIncompatible)
	}
	if o.z > s.z {
		s.z = o.z
		for v := range s.set {
			if uint8(bits.TrailingZeros64(v|1<<63)) < s.z {
				delete(s.set, v)
			}
		}
	}
	for v := range o.set {
		s.addHash(v)
	}
	return nil
}

// SizeBytes returns the serialized size.
func (s *BJKST) SizeBytes() int { return 1 + 4 + 8 + 1 + 4 + 8*len(s.set) }

// MarshalBinary encodes the sketch.
func (s *BJKST) MarshalBinary() ([]byte, error) {
	w := wire.NewWriter(s.SizeBytes())
	w.U8(tagBJKST)
	w.U32(uint32(s.budget))
	w.U64(s.seed)
	w.U8(s.z)
	w.U32(uint32(len(s.set)))
	vals := make([]uint64, 0, len(s.set))
	for v := range s.set {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, v := range vals {
		w.U64(v)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a sketch produced by MarshalBinary,
// replacing the receiver's state. Allocation is bounded by the stored
// value count, which must exactly fill the input.
func (s *BJKST) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data, ErrCorrupt)
	if r.U8() != tagBJKST {
		return fmt.Errorf("%w: not a BJKST sketch", ErrCorrupt)
	}
	budget := int(r.U32())
	seed := r.U64()
	z := r.U8()
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if budget < 8 || n > budget || r.Remaining() != 8*n {
		return fmt.Errorf("%w: BJKST header", ErrCorrupt)
	}
	tmp := &BJKST{
		budget: budget,
		seed:   seed,
		h:      hashing.NewMixer(seed),
		z:      z,
		set:    make(map[uint64]struct{}, n),
	}
	for i := 0; i < n; i++ {
		v := r.U64()
		if uint8(bits.TrailingZeros64(v|1<<63)) < z {
			return fmt.Errorf("%w: BJKST value below level", ErrCorrupt)
		}
		tmp.set[v] = struct{}{}
	}
	if err := r.Done(); err != nil {
		return err
	}
	*s = *tmp
	return nil
}
