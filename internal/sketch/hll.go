package sketch

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/hashing"
	"repro/internal/wire"
)

// HLL is a HyperLogLog distinct counter with 2^precision registers,
// linear-counting small-range correction, and a 64-bit hash (so the
// classical large-range correction is unnecessary). Standard error is
// about 1.04/sqrt(m). It is the cheapest of the three F0 sketches and
// the default choice in the Algorithm 1 ablation benches.
type HLL struct {
	precision uint8
	seed      uint64
	h         hashing.Mixer
	reg       []uint8
}

// NewHLL returns a HyperLogLog with the given precision in [4, 16].
func NewHLL(precision int, seed uint64) *HLL {
	if precision < 4 || precision > 16 {
		panic("sketch: HLL precision outside [4, 16]")
	}
	return &HLL{
		precision: uint8(precision),
		seed:      seed,
		h:         hashing.NewMixer(seed),
		reg:       make([]uint8, 1<<uint(precision)),
	}
}

// HLLForEpsilon returns an HLL sized so 1.04/sqrt(m) <= eps.
func HLLForEpsilon(eps float64, seed uint64) *HLL {
	if !(eps > 0 && eps < 1) {
		panic("sketch: epsilon outside (0,1)")
	}
	m := 1.04 * 1.04 / (eps * eps)
	p := 4
	for float64(uint64(1)<<uint(p)) < m && p < 16 {
		p++
	}
	return NewHLL(p, seed)
}

// Precision returns the register-count exponent.
func (s *HLL) Precision() int { return int(s.precision) }

// Seed returns the hash seed.
func (s *HLL) Seed() uint64 { return s.seed }

// Add observes an item.
func (s *HLL) Add(item uint64) {
	hv := s.h.Hash(item)
	idx := hv >> (64 - uint(s.precision))
	rest := hv<<uint(s.precision) | 1<<(uint(s.precision)-1) // sentinel guards clz
	rho := uint8(bits.LeadingZeros64(rest)) + 1
	if rho > s.reg[idx] {
		s.reg[idx] = rho
	}
}

// AddBatch observes every item of items in order, equivalent to
// calling Add per item; the precision shifts are hoisted out of the
// loop so the batched key pipeline pays one register probe per item.
func (s *HLL) AddBatch(items []uint64) {
	shift := 64 - uint(s.precision)
	sentinel := uint64(1) << (uint(s.precision) - 1)
	for _, item := range items {
		hv := s.h.Hash(item)
		idx := hv >> shift
		rho := uint8(bits.LeadingZeros64(hv<<uint(s.precision)|sentinel)) + 1
		if rho > s.reg[idx] {
			s.reg[idx] = rho
		}
	}
}

func alphaM(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Estimate returns the approximate number of distinct items.
func (s *HLL) Estimate() float64 {
	m := len(s.reg)
	sum := 0.0
	zeros := 0
	for _, r := range s.reg {
		sum += math.Ldexp(1, -int(r))
		if r == 0 {
			zeros++
		}
	}
	e := alphaM(m) * float64(m) * float64(m) / sum
	if e <= 2.5*float64(m) && zeros > 0 {
		// Small-range correction: linear counting.
		return float64(m) * math.Log(float64(m)/float64(zeros))
	}
	return e
}

// Merge takes the register-wise maximum of o into s.
func (s *HLL) Merge(o *HLL) error {
	if o.precision != s.precision || o.seed != s.seed {
		return fmt.Errorf("%w: HLL precision/seed mismatch", ErrIncompatible)
	}
	for i, r := range o.reg {
		if r > s.reg[i] {
			s.reg[i] = r
		}
	}
	return nil
}

// SizeBytes returns the serialized size.
func (s *HLL) SizeBytes() int { return 1 + 1 + 8 + len(s.reg) }

// MarshalBinary encodes the sketch.
func (s *HLL) MarshalBinary() ([]byte, error) {
	w := wire.NewWriter(s.SizeBytes())
	w.U8(tagHLL)
	w.U8(s.precision)
	w.U64(s.seed)
	w.Raw(s.reg)
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a sketch produced by MarshalBinary,
// replacing the receiver's state.
func (s *HLL) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data, ErrCorrupt)
	if r.U8() != tagHLL {
		return fmt.Errorf("%w: not an HLL sketch", ErrCorrupt)
	}
	p := int(r.U8())
	seed := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if p < 4 || p > 16 {
		return fmt.Errorf("%w: HLL precision %d", ErrCorrupt, p)
	}
	if r.Remaining() != 1<<uint(p) {
		return fmt.Errorf("%w: HLL register block", ErrCorrupt)
	}
	tmp := NewHLL(p, seed)
	copy(tmp.reg, r.Rest())
	*s = *tmp
	return nil
}
