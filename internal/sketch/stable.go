package sketch

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/rng"
	"repro/internal/wire"
)

// Stable is Indyk's p-stable sketch for F_p, 0 < p ≤ 2: reps counters
// S_j = Σ_i f_i · X_{i,j}, with X_{i,j} independent standard
// symmetric p-stable variates derived deterministically from
// (seed, item, j) via the Chambers–Mallows–Stuck method. By
// p-stability, S_j is distributed as ‖f‖_p · X for a fresh stable X,
// so median(|S_j|) / median(|X|) estimates ‖f‖_p, and raising to the
// p-th power gives F_p. This is the (1±ε) F_p sketch the Algorithm 1
// upper bound (Theorem 6.5) instantiates for 0 < p ≤ 2.
type Stable struct {
	p    float64
	reps int
	seed uint64
	sums []float64
}

// NewStable returns a p-stable sketch with the given repetition count;
// reps = O(1/ε²) gives a (1±ε) estimate with constant probability.
func NewStable(p float64, reps int, seed uint64) *Stable {
	if !(p > 0 && p <= 2) {
		panic("sketch: stability parameter outside (0, 2]")
	}
	if reps < 3 {
		panic("sketch: stable sketch needs at least 3 repetitions")
	}
	return &Stable{p: p, reps: reps, seed: seed, sums: make([]float64, reps)}
}

// StableForEpsilon sizes the sketch for relative error ε on ‖f‖_p.
func StableForEpsilon(p, eps float64, seed uint64) *Stable {
	if !(eps > 0 && eps < 1) {
		panic("sketch: epsilon outside (0,1)")
	}
	return NewStable(p, int(6/(eps*eps))+3, seed)
}

// P returns the moment order p.
func (s *Stable) P() float64 { return s.p }

// Reps returns the repetition count.
func (s *Stable) Reps() int { return s.reps }

// variate returns the deterministic p-stable X_{item,j}.
func (s *Stable) variate(item uint64, j int) float64 {
	src := rng.New(s.seed ^ rng.Mix64(item) ^ rng.Mix64(uint64(j)*0x9e3779b97f4a7c15+1))
	return src.Stable(s.p)
}

// AddCount adds count occurrences of item (negative counts allowed:
// the sketch is linear).
func (s *Stable) AddCount(item uint64, count int64) {
	for j := range s.sums {
		s.sums[j] += float64(count) * s.variate(item, j)
	}
}

// Add observes a single occurrence of item.
func (s *Stable) Add(item uint64) { s.AddCount(item, 1) }

// AddBatch observes every item of items in order, equivalent to
// calling Add per item. The variate derivation dominates, so batching
// buys no amortization here — this exists so the batched key pipeline
// has a uniform entry point across the sketch substrate.
func (s *Stable) AddBatch(items []uint64) {
	for _, item := range items {
		s.AddCount(item, 1)
	}
}

// EstimateNorm returns the estimate of ‖f‖_p.
func (s *Stable) EstimateNorm() float64 {
	abs := make([]float64, s.reps)
	for j, v := range s.sums {
		abs[j] = math.Abs(v)
	}
	sort.Float64s(abs)
	var med float64
	if s.reps%2 == 1 {
		med = abs[s.reps/2]
	} else {
		med = (abs[s.reps/2-1] + abs[s.reps/2]) / 2
	}
	return med / stableAbsMedian(s.p)
}

// EstimateMoment returns the estimate of F_p = ‖f‖_p^p.
func (s *Stable) EstimateMoment() float64 {
	return math.Pow(s.EstimateNorm(), s.p)
}

// Merge adds another Stable sketch counter-wise.
func (s *Stable) Merge(o *Stable) error {
	if o.p != s.p || o.reps != s.reps || o.seed != s.seed {
		return fmt.Errorf("%w: stable sketch p/reps/seed mismatch", ErrIncompatible)
	}
	for i, v := range o.sums {
		s.sums[i] += v
	}
	return nil
}

// SizeBytes returns the serialized size.
func (s *Stable) SizeBytes() int { return 1 + 8 + 4 + 8 + 8*len(s.sums) }

// MarshalBinary encodes the sketch.
func (s *Stable) MarshalBinary() ([]byte, error) {
	w := wire.NewWriter(s.SizeBytes())
	w.U8(tagStable)
	w.F64(s.p)
	w.U32(uint32(s.reps))
	w.U64(s.seed)
	for _, v := range s.sums {
		w.F64(v)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a sketch produced by MarshalBinary,
// replacing the receiver's state. The claimed repetition count must
// exactly fill the input, so allocation is bounded by the blob and
// any constructible sketch round-trips.
func (s *Stable) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data, ErrCorrupt)
	if r.U8() != tagStable {
		return fmt.Errorf("%w: not a stable sketch", ErrCorrupt)
	}
	p := r.F64()
	reps := int(r.U32())
	seed := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if !(p > 0 && p <= 2) || reps < 3 || r.Remaining() != 8*reps {
		return fmt.Errorf("%w: stable sketch header", ErrCorrupt)
	}
	tmp := NewStable(p, reps, seed)
	for i := range tmp.sums {
		tmp.sums[i] = r.F64()
	}
	if err := r.Done(); err != nil {
		return err
	}
	*s = *tmp
	return nil
}

var (
	stableMedianMu    sync.Mutex
	stableMedianCache = map[float64]float64{
		1: 1, // median |Cauchy| = tan(π/4)
	}
)

// stableAbsMedian returns the median of |X| for X standard symmetric
// p-stable, estimated once per p by a deterministic Monte-Carlo run
// (fixed seed, 200001 samples ⇒ the scaling constant is stable to
// ~0.3%, well inside every ε used by the experiments).
func stableAbsMedian(p float64) float64 {
	stableMedianMu.Lock()
	defer stableMedianMu.Unlock()
	if v, ok := stableMedianCache[p]; ok {
		return v
	}
	const samples = 200001
	src := rng.New(0x5eedc0de ^ math.Float64bits(p))
	xs := make([]float64, samples)
	for i := range xs {
		xs[i] = math.Abs(src.Stable(p))
	}
	sort.Float64s(xs)
	v := xs[samples/2]
	stableMedianCache[p] = v
	return v
}
