package sketch

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/hashing"
	"repro/internal/wire"
)

// KMV is the k-minimum-values distinct counter: it retains the k
// smallest distinct hash values seen and estimates F0 as
// (k-1) / u_(k) where u_(k) is the k-th smallest hash normalized to
// (0, 1). Standard error is about 1/sqrt(k-2), so k = O(1/ε²) gives a
// (1±ε) estimate — the contract Algorithm 1 requires of its
// β-approximate sketches.
//
// KMV is exact while fewer than k distinct items have been seen,
// merges by uniting value sets, and serializes to 8k + O(1) bytes.
type KMV struct {
	k    int
	seed uint64
	h    hashing.Mixer
	vals maxHeap             // the k smallest hashes, max at root
	set  map[uint64]struct{} // dedup of retained hashes
}

type maxHeap []uint64

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i] > h[j] }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewKMV returns a KMV sketch retaining k minima; k must be at least 2.
func NewKMV(k int, seed uint64) *KMV {
	if k < 2 {
		panic("sketch: KMV requires k >= 2")
	}
	return &KMV{
		k:    k,
		seed: seed,
		h:    hashing.NewMixer(seed),
		set:  make(map[uint64]struct{}, mapHint(k)),
	}
}

// KMVForEpsilon returns a KMV sized for standard error ε.
func KMVForEpsilon(eps float64, seed uint64) *KMV {
	if !(eps > 0 && eps < 1) {
		panic("sketch: epsilon outside (0,1)")
	}
	k := int(1.0/(eps*eps)) + 3
	return NewKMV(k, seed)
}

// K returns the retention parameter k.
func (s *KMV) K() int { return s.k }

// Seed returns the hash seed; merges require equal seeds.
func (s *KMV) Seed() uint64 { return s.seed }

// Add observes an item.
func (s *KMV) Add(item uint64) {
	s.addHash(s.h.Hash(item))
}

// AddBatch observes every item of items in order, equivalent to
// calling Add per item. Items are raw fingerprints (the sketch's own
// mixer is applied internally), so the batched key pipeline can feed
// precomputed Fingerprint64 streams without changing sketch state.
func (s *KMV) AddBatch(items []uint64) {
	for _, item := range items {
		s.addHash(s.h.Hash(item))
	}
}

func (s *KMV) addHash(hv uint64) {
	if _, dup := s.set[hv]; dup {
		return
	}
	if len(s.vals) < s.k {
		s.set[hv] = struct{}{}
		heap.Push(&s.vals, hv)
		return
	}
	if hv >= s.vals[0] {
		return
	}
	delete(s.set, s.vals[0])
	s.vals[0] = hv
	heap.Fix(&s.vals, 0)
	s.set[hv] = struct{}{}
}

// Estimate returns the approximate number of distinct items observed.
func (s *KMV) Estimate() float64 {
	if len(s.vals) < s.k {
		return float64(len(s.vals)) // exact below saturation
	}
	// Normalize the k-th minimum to (0, 1): u = (max+1) / 2^64.
	u := (float64(s.vals[0]) + 1) / (1 << 63) / 2
	return float64(s.k-1) / u
}

// Merge unions another KMV into s. Both must share k and seed.
func (s *KMV) Merge(o *KMV) error {
	if o.k != s.k || o.seed != s.seed {
		return fmt.Errorf("%w: KMV k/seed mismatch", ErrIncompatible)
	}
	for _, hv := range o.vals {
		s.addHash(hv)
	}
	return nil
}

// SizeBytes returns the serialized size.
func (s *KMV) SizeBytes() int { return 1 + 4 + 8 + 4 + 8*len(s.vals) }

// MarshalBinary encodes the sketch.
func (s *KMV) MarshalBinary() ([]byte, error) {
	w := wire.NewWriter(s.SizeBytes())
	w.U8(tagKMV)
	w.U32(uint32(s.k))
	w.U64(s.seed)
	w.U32(uint32(len(s.vals)))
	sorted := make([]uint64, len(s.vals))
	copy(sorted, s.vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, v := range sorted {
		w.U64(v)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a sketch produced by MarshalBinary,
// replacing the receiver's state. Allocation is bounded by the stored
// value count, which must exactly fill the input.
func (s *KMV) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data, ErrCorrupt)
	if r.U8() != tagKMV {
		return fmt.Errorf("%w: not a KMV sketch", ErrCorrupt)
	}
	k := int(r.U32())
	seed := r.U64()
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if k < 2 || n > k || r.Remaining() != 8*n {
		return fmt.Errorf("%w: KMV header k=%d n=%d", ErrCorrupt, k, n)
	}
	tmp := &KMV{
		k:    k,
		seed: seed,
		h:    hashing.NewMixer(seed),
		set:  make(map[uint64]struct{}, n),
	}
	for i := 0; i < n; i++ {
		tmp.addHash(r.U64())
	}
	if err := r.Done(); err != nil {
		return err
	}
	*s = *tmp
	return nil
}
