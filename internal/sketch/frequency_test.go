package sketch

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// zipfStream builds a deterministic skewed stream over `universe`
// items and returns the exact frequency map.
func zipfStream(universe, draws int, seed uint64) map[uint64]int64 {
	src := rng.New(seed)
	z := rng.NewZipf(src, universe, 1.1)
	freqs := make(map[uint64]int64, universe)
	for i := 0; i < draws; i++ {
		freqs[uint64(z.Next())*0x9e3779b97f4a7c15]++
	}
	return freqs
}

func feedFreq(s FrequencyEstimator, freqs map[uint64]int64) (n int64) {
	for item, c := range freqs {
		s.AddCount(item, c)
		n += c
	}
	return
}

func TestCountMinGuarantee(t *testing.T) {
	for _, conservative := range []bool{false, true} {
		freqs := zipfStream(2000, 100000, 11)
		s := CountMinForError(0.01, 0.01, 21, conservative)
		n := feedFreq(s, freqs)
		bound := 0.01 * float64(n)
		for item, truth := range freqs {
			est := s.EstimateCount(item)
			if est < float64(truth) {
				t.Fatalf("CountMin(conservative=%v) underestimated: %v < %d", conservative, est, truth)
			}
			if est-float64(truth) > bound {
				t.Fatalf("CountMin(conservative=%v) overshoot %v for truth %d (bound %v)",
					conservative, est-float64(truth), truth, bound)
			}
		}
	}
}

func TestCountMinConservativeNoWorse(t *testing.T) {
	freqs := zipfStream(500, 50000, 13)
	plain := NewCountMin(200, 4, 7, false)
	cons := NewCountMin(200, 4, 7, true)
	// Feed as singleton updates so conservative update has bite.
	for item, c := range freqs {
		for i := int64(0); i < c; i++ {
			plain.AddCount(item, 1)
			cons.AddCount(item, 1)
		}
	}
	for item := range freqs {
		if cons.EstimateCount(item) > plain.EstimateCount(item)+1e-9 {
			t.Fatal("conservative update must never exceed the plain estimate")
		}
	}
}

func TestCountMinMerge(t *testing.T) {
	freqs := zipfStream(300, 30000, 17)
	a := NewCountMin(300, 4, 3, false)
	b := NewCountMin(300, 4, 3, false)
	whole := NewCountMin(300, 4, 3, false)
	i := 0
	for item, c := range freqs {
		whole.AddCount(item, c)
		if i%2 == 0 {
			a.AddCount(item, c)
		} else {
			b.AddCount(item, c)
		}
		i++
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != whole.Total() {
		t.Fatalf("merged total %d != %d", a.Total(), whole.Total())
	}
	for item := range freqs {
		if a.EstimateCount(item) != whole.EstimateCount(item) {
			t.Fatal("merge must equal whole-stream sketch")
		}
	}
	// Conservative sketches must refuse to merge.
	if err := NewCountMin(10, 2, 1, true).Merge(NewCountMin(10, 2, 1, true)); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("conservative merge: %v", err)
	}
}

func TestCountMinPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCountMin(8, 2, 1, false).AddCount(1, 0)
}

func TestCountSketchPointEstimates(t *testing.T) {
	freqs := zipfStream(2000, 100000, 19)
	s := CountSketchForError(0.02, 0.01, 23)
	var f2 float64
	n := feedFreq(s, freqs)
	_ = n
	for _, c := range freqs {
		f2 += float64(c) * float64(c)
	}
	bound := 3 * 0.02 * math.Sqrt(f2)
	for item, truth := range freqs {
		if err := math.Abs(s.EstimateCount(item) - float64(truth)); err > bound {
			t.Fatalf("CountSketch error %v exceeds %v for truth %d", err, bound, truth)
		}
	}
}

func TestCountSketchTurnstile(t *testing.T) {
	s := NewCountSketch(256, 5, 29)
	s.AddCount(42, 1000)
	s.AddCount(43, 500)
	s.AddCount(42, -1000) // full deletion
	if est := s.EstimateCount(42); math.Abs(est) > 100 {
		t.Fatalf("deleted item estimate %v", est)
	}
	if est := s.EstimateCount(43); math.Abs(est-500) > 100 {
		t.Fatalf("remaining item estimate %v", est)
	}
}

func TestCountSketchF2(t *testing.T) {
	freqs := zipfStream(1000, 80000, 31)
	s := NewCountSketch(2048, 7, 37)
	var f2 float64
	feedFreq(s, freqs)
	for _, c := range freqs {
		f2 += float64(c) * float64(c)
	}
	if got := s.EstimateF2(); math.Abs(got-f2)/f2 > 0.1 {
		t.Fatalf("fast-AMS F2 = %v, truth %v", got, f2)
	}
}

func TestAMSMomentEstimate(t *testing.T) {
	freqs := zipfStream(1000, 80000, 41)
	s := NewAMS(9, 400, 43)
	var f2 float64
	for item, c := range freqs {
		s.AddCount(item, c)
		f2 += float64(c) * float64(c)
	}
	if got := s.EstimateMoment(); math.Abs(got-f2)/f2 > 0.15 {
		t.Fatalf("AMS F2 = %v, truth %v", got, f2)
	}
}

func TestAMSMerge(t *testing.T) {
	a := NewAMS(3, 50, 47)
	b := NewAMS(3, 50, 47)
	whole := NewAMS(3, 50, 47)
	for i := uint64(0); i < 2000; i++ {
		whole.AddCount(i, int64(i%5)+1)
		if i%2 == 0 {
			a.AddCount(i, int64(i%5)+1)
		} else {
			b.AddCount(i, int64(i%5)+1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.EstimateMoment() != whole.EstimateMoment() {
		t.Fatal("AMS merge must be exact (linear sketch)")
	}
	if err := a.Merge(NewAMS(3, 50, 48)); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("seed mismatch: %v", err)
	}
}

func TestFreqSerializationRoundTrip(t *testing.T) {
	f := func(seed uint64, items []uint64) bool {
		cm := NewCountMin(64, 3, seed, false)
		cs := NewCountSketch(64, 3, seed)
		ams := NewAMS(3, 8, seed)
		for _, it := range items {
			cm.AddCount(it, 2)
			cs.AddCount(it, 2)
			ams.AddCount(it, 2)
		}
		cmB, _ := cm.MarshalBinary()
		csB, _ := cs.MarshalBinary()
		amsB, _ := ams.MarshalBinary()
		var cm2 CountMin
		var cs2 CountSketch
		var ams2 AMS
		if cm2.UnmarshalBinary(cmB) != nil || cs2.UnmarshalBinary(csB) != nil || ams2.UnmarshalBinary(amsB) != nil {
			return false
		}
		probe := uint64(12345)
		return cm2.EstimateCount(probe) == cm.EstimateCount(probe) &&
			cs2.EstimateCount(probe) == cs.EstimateCount(probe) &&
			ams2.EstimateMoment() == ams.EstimateMoment()
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFreqUnmarshalCorrupt(t *testing.T) {
	for _, s := range []interface{ UnmarshalBinary([]byte) error }{&CountMin{}, &CountSketch{}, &AMS{}} {
		if err := s.UnmarshalBinary([]byte{0x00}); err == nil {
			t.Fatalf("%T must reject corrupt data", s)
		}
	}
}
