package sketch

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestKHLLDistinctValues(t *testing.T) {
	s := NewKHLL(512, 10, 1)
	const values = 20000
	for v := uint64(0); v < values; v++ {
		// Each value seen with a few ids; repeats must not inflate.
		s.Add(v, v%7)
		s.Add(v, v%5)
	}
	est := s.DistinctValues()
	if math.Abs(est-values)/values > 0.15 {
		t.Fatalf("distinct values %v, want ~%d", est, values)
	}
}

func TestKHLLExactBelowK(t *testing.T) {
	s := NewKHLL(64, 8, 2)
	for v := uint64(0); v < 40; v++ {
		s.Add(v, 0)
	}
	if got := s.DistinctValues(); got != 40 {
		t.Fatalf("below k must be exact: %v", got)
	}
}

// TestKHLLUniquenessDistribution plants a known id-per-value
// structure: 80% of values carry exactly one id, 20% carry many.
func TestKHLLUniquenessDistribution(t *testing.T) {
	s := NewKHLL(1024, 10, 3)
	src := rng.New(4)
	const values = 10000
	for v := uint64(0); v < values; v++ {
		if v%5 == 0 {
			// Popular value: 50 distinct ids.
			for id := uint64(0); id < 50; id++ {
				s.Add(v, id*values+v)
			}
		} else {
			s.Add(v, src.Uint64())
		}
	}
	unique := s.HighlyIdentifying(1)
	if math.Abs(unique-0.8) > 0.06 {
		t.Fatalf("unique fraction %v, want ~0.8", unique)
	}
	// The distribution is monotone in the threshold.
	dist := s.UniquenessDistribution([]int{1, 10, 100})
	if !(dist[0] <= dist[1] && dist[1] <= dist[2]) {
		t.Fatalf("distribution not monotone: %v", dist)
	}
	if dist[2] < 0.99 {
		t.Fatalf("threshold 100 must cover everything: %v", dist[2])
	}
}

func TestKHLLMerge(t *testing.T) {
	mk := func() *KHLL { return NewKHLL(256, 8, 5) }
	a, b, whole := mk(), mk(), mk()
	src := rng.New(6)
	for i := 0; i < 20000; i++ {
		v, id := uint64(src.Intn(3000)), src.Uint64()
		whole.Add(v, id)
		if i%2 == 0 {
			a.Add(v, id)
		} else {
			b.Add(v, id)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	ea, ew := a.DistinctValues(), whole.DistinctValues()
	if math.Abs(ea-ew)/ew > 0.05 {
		t.Fatalf("merged distinct %v vs whole %v", ea, ew)
	}
	if err := a.Merge(NewKHLL(256, 8, 6)); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("seed mismatch: %v", err)
	}
}

func TestKHLLSizeBounded(t *testing.T) {
	s := NewKHLL(128, 8, 7)
	for v := uint64(0); v < 100000; v++ {
		s.Add(v, v)
	}
	// At most k entries retained regardless of stream size.
	maxBytes := 17 + 128*(8+1+1+8+256+64) // generous
	if s.SizeBytes() > maxBytes {
		t.Fatalf("KHLL grew beyond k entries: %d bytes", s.SizeBytes())
	}
}

func TestKHLLPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewKHLL(1, 8, 1) },
		func() { NewKHLL(8, 2, 1) },
		func() { NewKHLL(8, 20, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
