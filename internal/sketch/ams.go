package sketch

import (
	"fmt"
	"sort"

	"repro/internal/hashing"
	"repro/internal/wire"
)

// AMS is the Alon–Matias–Szegedy F₂ estimator in its classical
// "tug-of-war" form: a grid of independent ±1 counters
// Z_{g,r} = Σ_i sign_{g,r}(i)·f_i with E[Z²] = F₂, combined by
// averaging within groups and taking the median across groups
// (median-of-means). Reference implementation for the paper's [1]
// citation; the bucketized fast variant lives on CountSketch.
type AMS struct {
	groups int // median dimension
	reps   int // mean dimension (per group)
	seed   uint64
	signs  []*hashing.PolyHash
	z      []int64 // groups × reps, row-major
}

// NewAMS returns an AMS sketch with the given median/mean grid.
func NewAMS(groups, reps int, seed uint64) *AMS {
	if groups < 1 || reps < 1 {
		panic("sketch: AMS shape must be positive")
	}
	s := &AMS{
		groups: groups,
		reps:   reps,
		seed:   seed,
		signs:  make([]*hashing.PolyHash, groups*reps),
		z:      make([]int64, groups*reps),
	}
	for i := range s.signs {
		s.signs[i] = hashing.NewPolyHash(seed+uint64(i)*0xe7037ed1a0b428db, 4)
	}
	return s
}

// AMSForError sizes the grid for relative error ε with failure
// probability δ: reps = 8/ε² means, ⌈ln 1/δ⌉ medians.
func AMSForError(eps, delta float64, seed uint64) *AMS {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic("sketch: AMS error parameters outside (0,1)")
	}
	reps := int(8/(eps*eps)) + 1
	groups := 1
	for p := 1.0; p > delta && groups < 64; groups += 2 {
		p /= 2.718
	}
	return NewAMS(groups|1, reps, seed)
}

// Groups returns the median dimension.
func (s *AMS) Groups() int { return s.groups }

// Reps returns the per-group mean dimension.
func (s *AMS) Reps() int { return s.reps }

// AddCount adds count occurrences of item.
func (s *AMS) AddCount(item uint64, count int64) {
	for i, h := range s.signs {
		s.z[i] += int64(h.Sign(item)) * count
	}
}

// Add observes a single occurrence of item.
func (s *AMS) Add(item uint64) { s.AddCount(item, 1) }

// EstimateMoment returns the median-of-means estimate of F₂.
func (s *AMS) EstimateMoment() float64 {
	means := make([]float64, s.groups)
	for g := 0; g < s.groups; g++ {
		sum := 0.0
		for r := 0; r < s.reps; r++ {
			v := float64(s.z[g*s.reps+r])
			sum += v * v
		}
		means[g] = sum / float64(s.reps)
	}
	sort.Float64s(means)
	if s.groups%2 == 1 {
		return means[s.groups/2]
	}
	return (means[s.groups/2-1] + means[s.groups/2]) / 2
}

// Merge adds another AMS counter-wise.
func (s *AMS) Merge(o *AMS) error {
	if o.groups != s.groups || o.reps != s.reps || o.seed != s.seed {
		return fmt.Errorf("%w: AMS shape/seed mismatch", ErrIncompatible)
	}
	for i, v := range o.z {
		s.z[i] += v
	}
	return nil
}

// SizeBytes returns the serialized size.
func (s *AMS) SizeBytes() int { return 1 + 4 + 4 + 8 + 8*len(s.z) }

// MarshalBinary encodes the sketch.
func (s *AMS) MarshalBinary() ([]byte, error) {
	w := wire.NewWriter(s.SizeBytes())
	w.U8(tagAMS)
	w.U32(uint32(s.groups))
	w.U32(uint32(s.reps))
	w.U64(s.seed)
	for _, v := range s.z {
		w.I64(v)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a sketch produced by MarshalBinary,
// replacing the receiver's state. The claimed grid must exactly fill
// the input, so allocation is bounded by the blob.
func (s *AMS) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data, ErrCorrupt)
	if r.U8() != tagAMS {
		return fmt.Errorf("%w: not an AMS sketch", ErrCorrupt)
	}
	groups := int(r.U32())
	reps := int(r.U32())
	seed := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if groups < 1 || reps < 1 || r.Remaining()%8 != 0 ||
		int64(groups)*int64(reps) != int64(r.Remaining()/8) {
		return fmt.Errorf("%w: AMS shape", ErrCorrupt)
	}
	tmp := NewAMS(groups, reps, seed)
	for i := range tmp.z {
		tmp.z[i] = r.I64()
	}
	if err := r.Done(); err != nil {
		return err
	}
	*s = *tmp
	return nil
}
