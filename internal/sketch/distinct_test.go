package sketch

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// distinctSketch is the common surface of the three F0 sketches.
type distinctSketch interface {
	DistinctEstimator
	MarshalBinary() ([]byte, error)
}

func distinctFactories() map[string]func(seed uint64) distinctSketch {
	return map[string]func(seed uint64) distinctSketch{
		"kmv":   func(seed uint64) distinctSketch { return NewKMV(1024, seed) },
		"hll":   func(seed uint64) distinctSketch { return NewHLL(12, seed) },
		"bjkst": func(seed uint64) distinctSketch { return NewBJKST(2048, seed) },
	}
}

func TestDistinctSketchAccuracy(t *testing.T) {
	for name, mk := range distinctFactories() {
		t.Run(name, func(t *testing.T) {
			s := mk(1)
			const n = 100000
			src := rng.New(2)
			for i := 0; i < n; i++ {
				item := src.Uint64()
				s.Add(item)
				s.Add(item) // duplicates must not inflate the estimate
			}
			est := s.Estimate()
			if math.Abs(est-n)/n > 0.1 {
				t.Fatalf("%s estimate %v for %d distinct", name, est, n)
			}
		})
	}
}

func TestDistinctSketchSmallCounts(t *testing.T) {
	for name, mk := range distinctFactories() {
		t.Run(name, func(t *testing.T) {
			s := mk(3)
			for i := uint64(0); i < 50; i++ {
				s.Add(i)
				s.Add(i)
			}
			est := s.Estimate()
			if math.Abs(est-50) > 5 {
				t.Fatalf("%s small-range estimate %v for 50 distinct", name, est)
			}
		})
	}
}

func TestKMVExactBelowSaturation(t *testing.T) {
	s := NewKMV(128, 7)
	for i := uint64(0); i < 100; i++ {
		s.Add(i)
		s.Add(i)
	}
	if got := s.Estimate(); got != 100 {
		t.Fatalf("below saturation KMV must be exact: %v", got)
	}
}

func TestDistinctMergeEqualsUnion(t *testing.T) {
	type merger interface {
		distinctSketch
	}
	check := func(name string, mkA, mkB, mkAll func() merger, merge func(a, b merger) error) {
		t.Run(name, func(t *testing.T) {
			a, b, all := mkA(), mkB(), mkAll()
			src := rng.New(5)
			for i := 0; i < 30000; i++ {
				item := src.Uint64()
				all.Add(item)
				if i%2 == 0 {
					a.Add(item)
				} else {
					b.Add(item)
				}
			}
			if err := merge(a, b); err != nil {
				t.Fatal(err)
			}
			ea, eu := a.Estimate(), all.Estimate()
			if math.Abs(ea-eu)/eu > 1e-9 {
				t.Fatalf("merge estimate %v != union estimate %v", ea, eu)
			}
		})
	}
	check("kmv",
		func() merger { return NewKMV(512, 9) },
		func() merger { return NewKMV(512, 9) },
		func() merger { return NewKMV(512, 9) },
		func(a, b merger) error { return a.(*KMV).Merge(b.(*KMV)) })
	check("hll",
		func() merger { return NewHLL(10, 9) },
		func() merger { return NewHLL(10, 9) },
		func() merger { return NewHLL(10, 9) },
		func(a, b merger) error { return a.(*HLL).Merge(b.(*HLL)) })
	check("bjkst",
		func() merger { return NewBJKST(1024, 9) },
		func() merger { return NewBJKST(1024, 9) },
		func() merger { return NewBJKST(1024, 9) },
		func(a, b merger) error { return a.(*BJKST).Merge(b.(*BJKST)) })
}

func TestDistinctMergeIncompatible(t *testing.T) {
	if err := NewKMV(64, 1).Merge(NewKMV(64, 2)); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("KMV seed mismatch: %v", err)
	}
	if err := NewKMV(64, 1).Merge(NewKMV(128, 1)); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("KMV k mismatch: %v", err)
	}
	if err := NewHLL(8, 1).Merge(NewHLL(9, 1)); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("HLL precision mismatch: %v", err)
	}
	if err := NewBJKST(64, 1).Merge(NewBJKST(64, 2)); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("BJKST seed mismatch: %v", err)
	}
}

func TestDistinctSerializationRoundTrip(t *testing.T) {
	f := func(seed uint64, itemsRaw []uint64) bool {
		for name, mk := range distinctFactories() {
			s := mk(seed)
			for _, it := range itemsRaw {
				s.Add(it)
			}
			data, err := s.MarshalBinary()
			if err != nil {
				t.Logf("%s marshal: %v", name, err)
				return false
			}
			if len(data) > s.SizeBytes() {
				t.Logf("%s SizeBytes %d < actual %d", name, s.SizeBytes(), len(data))
				return false
			}
			var back distinctSketch
			switch name {
			case "kmv":
				back = &KMV{}
			case "hll":
				back = &HLL{}
			default:
				back = &BJKST{}
			}
			if err := back.(interface{ UnmarshalBinary([]byte) error }).UnmarshalBinary(data); err != nil {
				t.Logf("%s unmarshal: %v", name, err)
				return false
			}
			if back.Estimate() != s.Estimate() {
				t.Logf("%s estimate drifted across serialization", name)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctUnmarshalCorrupt(t *testing.T) {
	for _, s := range []interface{ UnmarshalBinary([]byte) error }{&KMV{}, &HLL{}, &BJKST{}} {
		if err := s.UnmarshalBinary([]byte{0xff, 0x01}); err == nil {
			t.Fatalf("%T must reject corrupt data", s)
		}
		if err := s.UnmarshalBinary(nil); err == nil {
			t.Fatalf("%T must reject empty data", s)
		}
	}
	// Wrong tag.
	kmvBytes, _ := NewKMV(8, 1).MarshalBinary()
	if err := (&HLL{}).UnmarshalBinary(kmvBytes); err == nil {
		t.Fatal("HLL must reject a KMV payload")
	}
}

func TestForEpsilonConstructors(t *testing.T) {
	if k := KMVForEpsilon(0.1, 1).K(); k < 100 {
		t.Fatalf("KMV k = %d too small for eps=0.1", k)
	}
	if p := HLLForEpsilon(0.05, 1).Precision(); p < 9 {
		t.Fatalf("HLL precision %d too small for eps=0.05", p)
	}
	if b := BJKSTForEpsilon(0.1, 1).Budget(); b < 1000 {
		t.Fatalf("BJKST budget %d too small for eps=0.1", b)
	}
	for _, fn := range []func(){
		func() { KMVForEpsilon(0, 1) },
		func() { HLLForEpsilon(1.5, 1) },
		func() { BJKSTForEpsilon(-0.1, 1) },
		func() { NewKMV(1, 1) },
		func() { NewHLL(3, 1) },
		func() { NewBJKST(2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDistinctSeedIndependence(t *testing.T) {
	// Different seeds give different (but individually valid) sketches.
	a, b := NewKMV(64, 1), NewKMV(64, 2)
	for i := uint64(0); i < 1000; i++ {
		a.Add(i)
		b.Add(i)
	}
	am, _ := a.MarshalBinary()
	bm, _ := b.MarshalBinary()
	if string(am) == string(bm) {
		t.Fatal("different seeds must produce different retained values")
	}
}
