package sketch

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

// stableTruth computes exact ||f||_p^p for a frequency map.
func stableTruth(freqs map[uint64]int64, p float64) float64 {
	s := 0.0
	for _, c := range freqs {
		s += math.Pow(float64(c), p)
	}
	return s
}

func TestStableNormEstimates(t *testing.T) {
	freqs := zipfStream(500, 40000, 51)
	for _, p := range []float64{0.5, 1.0, 1.5, 2.0} {
		s := NewStable(p, 400, 53)
		for item, c := range freqs {
			s.AddCount(item, c)
		}
		truth := stableTruth(freqs, p)
		got := s.EstimateMoment()
		if math.Abs(got-truth)/truth > 0.3 {
			t.Fatalf("p=%v: moment %v, truth %v", p, got, truth)
		}
		normTruth := math.Pow(truth, 1/p)
		if gotN := s.EstimateNorm(); math.Abs(gotN-normTruth)/normTruth > 0.15 {
			t.Fatalf("p=%v: norm %v, truth %v", p, gotN, normTruth)
		}
	}
}

func TestStableLinearity(t *testing.T) {
	// Adding then removing an item must cancel exactly.
	s := NewStable(1.5, 50, 57)
	s.AddCount(99, 1000)
	s.AddCount(42, 7)
	s.AddCount(99, -1000)
	only := NewStable(1.5, 50, 57)
	only.AddCount(42, 7)
	if math.Abs(s.EstimateNorm()-only.EstimateNorm()) > 1e-6 {
		t.Fatalf("cancellation failed: %v vs %v", s.EstimateNorm(), only.EstimateNorm())
	}
}

func TestStableMerge(t *testing.T) {
	a := NewStable(0.5, 60, 59)
	b := NewStable(0.5, 60, 59)
	whole := NewStable(0.5, 60, 59)
	for i := uint64(0); i < 500; i++ {
		whole.AddCount(i, 3)
		if i%2 == 0 {
			a.AddCount(i, 3)
		} else {
			b.AddCount(i, 3)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.EstimateNorm()-whole.EstimateNorm()) > 1e-9 {
		t.Fatal("merged stable sketch must equal whole-stream sketch")
	}
	if err := a.Merge(NewStable(0.6, 60, 59)); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("p mismatch: %v", err)
	}
}

func TestStableSerializationRoundTrip(t *testing.T) {
	s := NewStable(1.2, 40, 61)
	src := rng.New(63)
	for i := 0; i < 200; i++ {
		s.AddCount(src.Uint64(), int64(src.Intn(10))+1)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Stable
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.EstimateNorm() != s.EstimateNorm() || back.P() != 1.2 || back.Reps() != 40 {
		t.Fatal("serialization round trip drifted")
	}
	if err := back.UnmarshalBinary(data[:5]); err == nil {
		t.Fatal("truncated payload must error")
	}
}

func TestStablePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewStable(0, 10, 1) },
		func() { NewStable(2.5, 10, 1) },
		func() { NewStable(1, 2, 1) },
		func() { StableForEpsilon(1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStableAbsMedianCached(t *testing.T) {
	// p = 1 is the analytic value 1 (median |Cauchy|).
	if v := stableAbsMedian(1); v != 1 {
		t.Fatalf("median |Cauchy| = %v", v)
	}
	// Repeated calls hit the cache and must agree exactly.
	a := stableAbsMedian(0.7)
	b := stableAbsMedian(0.7)
	if a != b {
		t.Fatal("cache must be deterministic")
	}
	// p = 2: |N(0,2)| has median sqrt(2)*z_{0.75} ≈ 0.9539.
	if v := stableAbsMedian(2); math.Abs(v-0.9539) > 0.01 {
		t.Fatalf("median |stable_2| = %v, want ≈0.954", v)
	}
}

func TestStableUnmarshalRejectsNaNOrder(t *testing.T) {
	s := NewStable(1.5, 5, 9)
	s.Add(42)
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The moment order p sits right after the 1-byte tag; NaN fails
	// every comparison, so a non-NaN-safe range check would admit it
	// and the decoded sketch would estimate NaN forever.
	binary.LittleEndian.PutUint64(blob[1:], math.Float64bits(math.NaN()))
	var dec Stable
	if err := dec.UnmarshalBinary(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("NaN moment order must be corrupt, got %v", err)
	}
}
