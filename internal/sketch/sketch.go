// Package sketch implements the streaming summaries the paper's upper
// bounds consume: (1±ε) distinct-count sketches (KMV, HyperLogLog,
// BJKST) standing in for the optimal F0 sketch of [11] referenced in
// Section 6, point-frequency sketches (CountMin, CountSketch), and
// frequency-moment sketches (fast-AMS F2, Indyk p-stable F_p for
// 0 < p ≤ 2). Every sketch is deterministic given its seed, mergeable
// where the algorithm admits it, and binary-serializable so the
// communication experiments of Section 3.3 can measure message sizes
// in bytes.
//
// Items are 64-bit fingerprints of patterns (hashing.Fingerprint64);
// the collision probability is negligible against all error budgets.
package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// DistinctEstimator is a sketch approximating F0 = ‖f‖₀.
type DistinctEstimator interface {
	Add(item uint64)
	// Estimate returns the approximate number of distinct items.
	Estimate() float64
	// SizeBytes returns the serialized size, the space the paper's
	// bounds are stated in.
	SizeBytes() int
}

// FrequencyEstimator is a sketch approximating point frequencies f_i.
type FrequencyEstimator interface {
	AddCount(item uint64, count int64)
	// EstimateCount returns the approximate frequency of item.
	EstimateCount(item uint64) float64
	SizeBytes() int
}

// MomentEstimator is a sketch approximating a frequency moment F_p.
type MomentEstimator interface {
	AddCount(item uint64, count int64)
	// EstimateMoment returns the approximate F_p value.
	EstimateMoment() float64
	SizeBytes() int
}

// ErrIncompatible is returned by Merge when two sketches were built
// with different parameters or seeds.
var ErrIncompatible = errors.New("sketch: incompatible sketches")

// ErrCorrupt is returned when deserializing malformed bytes.
var ErrCorrupt = errors.New("sketch: corrupt serialized data")

// writer accumulates a binary encoding; all sketches use little-endian
// fixed-width fields with a leading format tag.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) ensure(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = ErrCorrupt
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.ensure(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if !r.ensure(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.ensure(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf)-r.off)
	}
	return nil
}

// Format tags for serialized sketches.
const (
	tagKMV uint8 = iota + 1
	tagHLL
	tagBJKST
	tagCountMin
	tagCountSketch
	tagAMS
	tagStable
)
