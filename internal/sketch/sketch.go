// Package sketch implements the streaming summaries the paper's upper
// bounds consume: (1±ε) distinct-count sketches (KMV, HyperLogLog,
// BJKST) standing in for the optimal F0 sketch of [11] referenced in
// Section 6, point-frequency sketches (CountMin, CountSketch), and
// frequency-moment sketches (fast-AMS F2, Indyk p-stable F_p for
// 0 < p ≤ 2). Every sketch is deterministic given its seed, mergeable
// where the algorithm admits it, and binary-serializable so the
// communication experiments of Section 3.3 can measure message sizes
// in bytes.
//
// Items are 64-bit fingerprints of patterns (hashing.Fingerprint64);
// the collision probability is negligible against all error budgets.
package sketch

import (
	"errors"
)

// DistinctEstimator is a sketch approximating F0 = ‖f‖₀.
type DistinctEstimator interface {
	Add(item uint64)
	// Estimate returns the approximate number of distinct items.
	Estimate() float64
	// SizeBytes returns the serialized size, the space the paper's
	// bounds are stated in.
	SizeBytes() int
}

// FrequencyEstimator is a sketch approximating point frequencies f_i.
type FrequencyEstimator interface {
	AddCount(item uint64, count int64)
	// EstimateCount returns the approximate frequency of item.
	EstimateCount(item uint64) float64
	SizeBytes() int
}

// MomentEstimator is a sketch approximating a frequency moment F_p.
type MomentEstimator interface {
	AddCount(item uint64, count int64)
	// EstimateMoment returns the approximate F_p value.
	EstimateMoment() float64
	SizeBytes() int
}

// ErrIncompatible is returned by Merge when two sketches were built
// with different parameters or seeds.
var ErrIncompatible = errors.New("sketch: incompatible sketches")

// ErrCorrupt is returned when deserializing malformed bytes.
//
// The codecs share internal/wire's reader/writer; every decoder
// validates claimed element counts against the remaining input before
// allocating, so memory use is proportional to the blob — a corrupt
// header cannot demand more than its own byte count — and any sketch
// a constructor can build round-trips.
var ErrCorrupt = errors.New("sketch: corrupt serialized data")

// mapHint caps pre-size hints for retention maps: the map grows to
// its true size on demand, so a huge capacity parameter must not
// translate into a huge up-front allocation.
func mapHint(k int) int {
	if k > 1<<16 {
		return 1 << 16
	}
	return k
}

// Format tags for serialized sketches.
const (
	tagKMV uint8 = iota + 1
	tagHLL
	tagBJKST
	tagCountMin
	tagCountSketch
	tagAMS
	tagStable
	tagKHLL
)
