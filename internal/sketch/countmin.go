package sketch

import (
	"fmt"
	"math"

	"repro/internal/hashing"
	"repro/internal/wire"
)

// CountMin is the Cormode–Muthukrishnan Count-Min sketch: depth
// pairwise-independent hash rows over width counters. Point queries
// return the row minimum, overestimating f_i by at most ε‖f‖₁ with
// probability 1-δ when width = ⌈e/ε⌉ and depth = ⌈ln 1/δ⌉. The
// optional conservative-update mode (an ablation point) only raises
// counters to the minimum consistent value, reducing overestimation
// on skewed streams at the cost of losing mergeability.
type CountMin struct {
	width        int
	depth        int
	seed         uint64
	conservative bool
	rows         []*hashing.PolyHash
	counts       []int64 // depth × width, row-major
	total        int64
}

// NewCountMin returns a CountMin sketch with the given shape.
func NewCountMin(width, depth int, seed uint64, conservative bool) *CountMin {
	if width < 1 || depth < 1 {
		panic("sketch: CountMin shape must be positive")
	}
	s := &CountMin{
		width:        width,
		depth:        depth,
		seed:         seed,
		conservative: conservative,
		rows:         make([]*hashing.PolyHash, depth),
		counts:       make([]int64, width*depth),
	}
	for i := range s.rows {
		s.rows[i] = hashing.NewPolyHash(seed+uint64(i)*0x9e3779b97f4a7c15, 2)
	}
	return s
}

// CountMinForError sizes the sketch for additive error ε‖f‖₁ with
// failure probability δ.
func CountMinForError(eps, delta float64, seed uint64, conservative bool) *CountMin {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic("sketch: CountMin error parameters outside (0,1)")
	}
	w := int(math.Ceil(math.E / eps))
	d := int(math.Ceil(math.Log(1 / delta)))
	if d < 1 {
		d = 1
	}
	return NewCountMin(w, d, seed, conservative)
}

// Width returns the per-row counter count.
func (s *CountMin) Width() int { return s.width }

// Depth returns the number of hash rows.
func (s *CountMin) Depth() int { return s.depth }

// Conservative reports whether conservative update is enabled.
func (s *CountMin) Conservative() bool { return s.conservative }

// Total returns the stream length Σ counts seen.
func (s *CountMin) Total() int64 { return s.total }

// AddCount adds count occurrences of item; count must be positive.
func (s *CountMin) AddCount(item uint64, count int64) {
	if count <= 0 {
		panic("sketch: CountMin requires positive counts")
	}
	s.total += count
	if !s.conservative {
		for r := 0; r < s.depth; r++ {
			s.counts[r*s.width+s.rows[r].Bucket(item, s.width)] += count
		}
		return
	}
	// Conservative update: raise each counter only to min+count.
	min := int64(math.MaxInt64)
	idx := make([]int, s.depth)
	for r := 0; r < s.depth; r++ {
		idx[r] = r*s.width + s.rows[r].Bucket(item, s.width)
		if s.counts[idx[r]] < min {
			min = s.counts[idx[r]]
		}
	}
	target := min + count
	for _, i := range idx {
		if s.counts[i] < target {
			s.counts[i] = target
		}
	}
}

// Add observes a single occurrence of item.
func (s *CountMin) Add(item uint64) { s.AddCount(item, 1) }

// EstimateCount returns the row-minimum estimate of f_item.
func (s *CountMin) EstimateCount(item uint64) float64 {
	min := int64(math.MaxInt64)
	for r := 0; r < s.depth; r++ {
		c := s.counts[r*s.width+s.rows[r].Bucket(item, s.width)]
		if c < min {
			min = c
		}
	}
	return float64(min)
}

// Merge adds another CountMin counter-wise. It fails for
// conservative sketches, whose updates are order-dependent.
func (s *CountMin) Merge(o *CountMin) error {
	if o.width != s.width || o.depth != s.depth || o.seed != s.seed {
		return fmt.Errorf("%w: CountMin shape/seed mismatch", ErrIncompatible)
	}
	if s.conservative || o.conservative {
		return fmt.Errorf("%w: conservative CountMin is not mergeable", ErrIncompatible)
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	s.total += o.total
	return nil
}

// SizeBytes returns the serialized size.
func (s *CountMin) SizeBytes() int { return 1 + 4 + 4 + 8 + 1 + 8 + 8*len(s.counts) }

// MarshalBinary encodes the sketch.
func (s *CountMin) MarshalBinary() ([]byte, error) {
	w := wire.NewWriter(s.SizeBytes())
	w.U8(tagCountMin)
	w.U32(uint32(s.width))
	w.U32(uint32(s.depth))
	w.U64(s.seed)
	if s.conservative {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.I64(s.total)
	for _, c := range s.counts {
		w.I64(c)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a sketch produced by MarshalBinary,
// replacing the receiver's state. The claimed shape must exactly fill
// the input, so allocation is bounded by the blob.
func (s *CountMin) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data, ErrCorrupt)
	if r.U8() != tagCountMin {
		return fmt.Errorf("%w: not a CountMin sketch", ErrCorrupt)
	}
	width := int(r.U32())
	depth := int(r.U32())
	seed := r.U64()
	conservative := r.U8() == 1
	total := r.I64()
	if err := r.Err(); err != nil {
		return err
	}
	if width < 1 || depth < 1 || r.Remaining()%8 != 0 ||
		int64(width)*int64(depth) != int64(r.Remaining()/8) {
		return fmt.Errorf("%w: CountMin shape", ErrCorrupt)
	}
	tmp := NewCountMin(width, depth, seed, conservative)
	tmp.total = total
	for i := range tmp.counts {
		tmp.counts[i] = r.I64()
	}
	if err := r.Done(); err != nil {
		return err
	}
	*s = *tmp
	return nil
}
