package sketch

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hashing"
	"repro/internal/wire"
)

// CountSketch is the Charikar–Chen–Farach-Colton sketch: depth rows of
// width counters, each row pairing a pairwise-independent bucket hash
// with a 4-wise independent ±1 sign hash. Point estimates are the
// median across rows of sign·counter, with additive error
// O(‖f‖₂/√width) — the ℓ₂ guarantee that distinguishes it from
// CountMin's ℓ₁ bound. Its row counters double as a fast-AMS F₂
// estimator (see AMS in this package).
type CountSketch struct {
	width  int
	depth  int
	seed   uint64
	bucket []*hashing.PolyHash
	sign   []*hashing.PolyHash
	counts []int64 // depth × width, row-major
}

// NewCountSketch returns a CountSketch with the given shape.
func NewCountSketch(width, depth int, seed uint64) *CountSketch {
	if width < 1 || depth < 1 {
		panic("sketch: CountSketch shape must be positive")
	}
	s := &CountSketch{
		width:  width,
		depth:  depth,
		seed:   seed,
		bucket: make([]*hashing.PolyHash, depth),
		sign:   make([]*hashing.PolyHash, depth),
		counts: make([]int64, width*depth),
	}
	for i := 0; i < depth; i++ {
		s.bucket[i] = hashing.NewPolyHash(seed+uint64(2*i)*0xa0761d6478bd642f, 2)
		s.sign[i] = hashing.NewPolyHash(seed+uint64(2*i+1)*0xa0761d6478bd642f, 4)
	}
	return s
}

// CountSketchForError sizes the sketch for additive error ε‖f‖₂ with
// failure probability δ.
func CountSketchForError(eps, delta float64, seed uint64) *CountSketch {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic("sketch: CountSketch error parameters outside (0,1)")
	}
	w := int(math.Ceil(3 / (eps * eps)))
	d := int(math.Ceil(math.Log(1/delta))) | 1 // odd for a strict median
	if d < 1 {
		d = 1
	}
	return NewCountSketch(w, d, seed)
}

// Width returns the per-row counter count.
func (s *CountSketch) Width() int { return s.width }

// Depth returns the number of rows.
func (s *CountSketch) Depth() int { return s.depth }

// AddCount adds count occurrences of item (count may be negative:
// CountSketch supports turnstile updates).
func (s *CountSketch) AddCount(item uint64, count int64) {
	for r := 0; r < s.depth; r++ {
		b := s.bucket[r].Bucket(item, s.width)
		s.counts[r*s.width+b] += int64(s.sign[r].Sign(item)) * count
	}
}

// Add observes a single occurrence of item.
func (s *CountSketch) Add(item uint64) { s.AddCount(item, 1) }

// EstimateCount returns the median-of-rows estimate of f_item.
func (s *CountSketch) EstimateCount(item uint64) float64 {
	est := make([]float64, s.depth)
	for r := 0; r < s.depth; r++ {
		b := s.bucket[r].Bucket(item, s.width)
		est[r] = float64(s.sign[r].Sign(item)) * float64(s.counts[r*s.width+b])
	}
	return median(est)
}

// EstimateF2 returns the fast-AMS estimate of F₂ = ‖f‖₂²: the median
// across rows of the sum of squared counters.
func (s *CountSketch) EstimateF2() float64 {
	est := make([]float64, s.depth)
	for r := 0; r < s.depth; r++ {
		sum := 0.0
		for b := 0; b < s.width; b++ {
			c := float64(s.counts[r*s.width+b])
			sum += c * c
		}
		est[r] = sum
	}
	return median(est)
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// Merge adds another CountSketch counter-wise.
func (s *CountSketch) Merge(o *CountSketch) error {
	if o.width != s.width || o.depth != s.depth || o.seed != s.seed {
		return fmt.Errorf("%w: CountSketch shape/seed mismatch", ErrIncompatible)
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	return nil
}

// SizeBytes returns the serialized size.
func (s *CountSketch) SizeBytes() int { return 1 + 4 + 4 + 8 + 8*len(s.counts) }

// MarshalBinary encodes the sketch.
func (s *CountSketch) MarshalBinary() ([]byte, error) {
	w := wire.NewWriter(s.SizeBytes())
	w.U8(tagCountSketch)
	w.U32(uint32(s.width))
	w.U32(uint32(s.depth))
	w.U64(s.seed)
	for _, c := range s.counts {
		w.I64(c)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a sketch produced by MarshalBinary,
// replacing the receiver's state. The claimed shape must exactly fill
// the input, so allocation is bounded by the blob.
func (s *CountSketch) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data, ErrCorrupt)
	if r.U8() != tagCountSketch {
		return fmt.Errorf("%w: not a CountSketch", ErrCorrupt)
	}
	width := int(r.U32())
	depth := int(r.U32())
	seed := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if width < 1 || depth < 1 || r.Remaining()%8 != 0 ||
		int64(width)*int64(depth) != int64(r.Remaining()/8) {
		return fmt.Errorf("%w: CountSketch shape", ErrCorrupt)
	}
	tmp := NewCountSketch(width, depth, seed)
	for i := range tmp.counts {
		tmp.counts[i] = r.I64()
	}
	if err := r.Done(); err != nil {
		return err
	}
	*s = *tmp
	return nil
}
